//! The user-facing engine API.

use std::path::Path;
use std::sync::{Mutex, MutexGuard, OnceLock, RwLockReadGuard};
use std::time::Instant;

use eh_query::{parse_sparql, ConjunctiveQuery};
use eh_rdf::{LoadInfo, SnapshotError, StoreSnapshot, TripleStore};
use eh_wal::{crash_point, FsyncPolicy, Wal, WalError};

use crate::catalog::Catalog;
use crate::error::EngineError;
use crate::exec::execute_plan;
use crate::flags::{OptFlags, PlannerConfig};
use crate::plan::Plan;
use crate::planner::build_plan_with;
use crate::profile::{ExecStats, QueryProfile};
use crate::result::QueryResult;
use crate::shared::SharedStore;
use crate::update::{UpdateBatch, UpdateSummary, WalAppend};

/// Bound on mid-join epoch-moved re-executions (see [`Engine::run_plan`]).
const MID_JOIN_UPDATE_RETRIES: u64 = 3;

/// `EH_OBS_FORCE=1` routes every plan execution through the profiled
/// path (the profile is recorded and discarded when the caller didn't ask
/// for it). CI uses this to run the whole suite with instrumentation on,
/// proving the recording layer cannot perturb results.
fn obs_forced() -> bool {
    static FORCED: OnceLock<bool> = OnceLock::new();
    *FORCED.get_or_init(|| {
        std::env::var("EH_OBS_FORCE").map(|v| !v.is_empty() && v != "0").unwrap_or(false)
    })
}

/// A WAL frame that checksums clean but whose payload fails batch
/// decode is corrupt content, not framing — surface it through the same
/// typed refusal.
fn payload_decode_reason(e: &eh_rdf::BatchCodecError) -> &'static str {
    use eh_rdf::BatchCodecError;
    match e {
        BatchCodecError::Truncated => "payload decode: truncated batch",
        BatchCodecError::BadTermKind(_) => "payload decode: unknown term kind",
        BatchCodecError::BadUtf8 => "payload decode: bad utf-8",
        BatchCodecError::BadSharedPrefix => "payload decode: bad shared prefix",
        BatchCodecError::TrailingBytes(_) => "payload decode: trailing bytes",
    }
}

/// A worst-case optimal join engine over a [`SharedStore`].
///
/// The engine owns a trie catalog (its "indexes"); tries are built lazily
/// per (predicate, order, layout) and cached, mirroring how EmptyHeaded
/// loads relations once and reuses them across queries. Timing
/// methodology note: the paper excludes index construction from query
/// time (§IV-A4) — call [`Engine::warm`] before measuring.
///
/// The store is *live*: [`Engine::update`] applies a batch of insertions
/// and deletions, invalidates only the changed predicates' tries, and
/// advances the catalog epoch so downstream result caches retire their
/// stale entries. Queries running concurrently with an update are
/// answered from a consistent trie snapshot — tries are immutable
/// `Arc`s, never mutated in place.
pub struct Engine {
    catalog: Catalog,
    config: PlannerConfig,
    /// How the snapshot behind this engine loaded (copy vs mmap, with
    /// any fallback reason); `None` for engines not built from a
    /// snapshot.
    load: Option<LoadInfo>,
    /// The attached write-ahead log, `None` until
    /// [`Engine::open_wal`]. Behind a `Mutex` because appends must hit
    /// the file in the same order batches stage: `update` holds this
    /// lock from its append through its staging, making (append order)
    /// = (apply order) by construction. Lock order is wal → store;
    /// nothing takes them the other way around.
    wal: Option<Mutex<Wal>>,
}

/// What replaying a log did (see [`Engine::open_wal`] /
/// [`Engine::replay`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalRecovery {
    /// Log records replayed through the update machinery.
    pub replayed: usize,
    /// Triples actually added across the replayed batches.
    pub inserted: usize,
    /// Triples actually removed across the replayed batches.
    pub deleted: usize,
    /// The log's base sequence (already folded into the snapshot).
    pub base_seq: u64,
    /// Last sequence number in the log after recovery.
    pub last_seq: u64,
    /// Whether a torn final record was dropped during the open.
    pub torn_tail_dropped: bool,
}

/// Live WAL observables (surfaced in `STATS` and `METRICS`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalStatus {
    /// Last appended sequence number.
    pub seq: u64,
    /// Log file size in bytes.
    pub bytes: u64,
    /// The configured fsync policy.
    pub fsync: FsyncPolicy,
}

impl Engine {
    /// An engine with the given optimization flags. Accepts a
    /// [`SharedStore`] (clone the handle to keep access) or a bare
    /// [`TripleStore`] (moved in; retrieve it through
    /// [`Engine::store`] / [`Engine::shared_store`]).
    pub fn new(store: impl Into<SharedStore>, flags: OptFlags) -> Engine {
        Engine::with_config(store, PlannerConfig::with_flags(flags))
    }

    /// An engine with a full planner configuration (used by the
    /// LogicBlox-style baseline).
    pub fn with_config(store: impl Into<SharedStore>, config: PlannerConfig) -> Engine {
        Engine { catalog: Catalog::new(store.into()), config, load: None, wal: None }
    }

    /// An engine restored from a snapshot file: the store loads without
    /// parsing or re-sorting, and any frozen tries the snapshot carries
    /// are preloaded into the catalog — so the engine starts *warm*, its
    /// first query served from arenas that were `memcpy`d off disk. The
    /// loaded store is as mutable as a cold-built one; an
    /// [`Engine::update`] thaws (rebuilds) only the changed predicates'
    /// tries, exactly as it would after any invalidation.
    pub fn from_snapshot(
        path: impl AsRef<Path>,
        config: PlannerConfig,
    ) -> Result<Engine, SnapshotError> {
        // Shard sections load and verify on the configured runtime's
        // workers — the snapshot format's per-shard layout exists so a
        // partitioned cold start is bounded by the largest shard, not the
        // whole file.
        let snapshot = StoreSnapshot::read_from_path_with(path, config.runtime.num_threads)?;
        Ok(Engine::from_loaded_snapshot(snapshot, config))
    }

    /// [`Engine::from_snapshot`], zero-copy: the snapshot file is
    /// `mmap`ed and the preloaded tries serve their arenas straight from
    /// the mapped pages — cold start pays metadata decode and checksums,
    /// not an arena copy, and co-located processes mapping the same file
    /// share physical memory. Falls back to the copy path (recorded in
    /// [`Engine::load_info`]) when the file or platform cannot be
    /// mapped; fails only on genuine corruption or I/O errors.
    pub fn from_snapshot_mmap(
        path: impl AsRef<Path>,
        config: PlannerConfig,
    ) -> Result<Engine, SnapshotError> {
        let snapshot = StoreSnapshot::read_from_path_mmap(path, config.runtime.num_threads)?;
        Ok(Engine::from_loaded_snapshot(snapshot, config))
    }

    /// An engine over an already-loaded [`StoreSnapshot`] (see
    /// [`Engine::from_snapshot`]).
    pub fn from_loaded_snapshot(snapshot: StoreSnapshot, config: PlannerConfig) -> Engine {
        let mut engine = Engine::with_config(snapshot.store, config);
        engine.load = Some(snapshot.load);
        engine.catalog.preload(
            snapshot.tries.into_iter().map(|e| (e.pred, e.subject_first, e.shard as usize, e.trie)),
        );
        engine
    }

    /// How this engine's snapshot loaded — `None` when the engine was
    /// not built from a snapshot. A serving tier surfaces this in STATS
    /// and metrics so "did we actually get mmap?" is answerable from
    /// outside the process.
    pub fn load_info(&self) -> Option<LoadInfo> {
        self.load
    }

    /// Persist the current store — dictionary, predicate tables, and
    /// freshly frozen hot-order tries — to a snapshot file. Returns the
    /// bytes written and the number of triples the image holds.
    ///
    /// The store's read lock is held only long enough to *clone* the
    /// store, so the image is a consistent point in time but writers are
    /// not stalled behind trie freezing and file I/O (the expensive
    /// parts, which run on the private clone). The triple count is taken
    /// from that same clone, so it always agrees with the file contents
    /// even when updates land mid-save.
    /// With a WAL attached, `save` also *truncates the log*: records
    /// folded into the image are dropped (atomic temp-and-rename, like
    /// the snapshot itself), so the log only ever holds the tail since
    /// the last image. The WAL sequence is captured under the wal lock
    /// in the same bracket as the store clone — and because updates
    /// hold that lock from append through staging, every record `<=`
    /// the captured sequence is *in* the clone and every later one is
    /// not. A crash between the image rename and the log truncation
    /// leaves both the new image and the untruncated log; replaying
    /// already-folded records is idempotent (set semantics: re-inserts
    /// and re-deletes of applied operations are no-ops), so recovery
    /// still converges to the identical store.
    pub fn save_snapshot(&self, path: impl AsRef<Path>) -> Result<(u64, usize), SnapshotError> {
        let (mut store, wal_seq) = match &self.wal {
            None => (self.store().clone(), None),
            Some(wal) => {
                let w = Self::lock_wal(wal);
                let store = self.store().clone();
                (store, Some(w.last_seq()))
                // wal lock drops here: writers proceed while the clone
                // freezes and writes below.
            }
        };
        // Snapshots encode base tables only; fold the clone's staged
        // deltas in so overlay novelty is never silently dropped from the
        // image. The live store keeps its deltas — this is the private
        // copy.
        store.compact_all();
        let tries = StoreSnapshot::hot_tries(&store);
        crash_point("engine-save-pre");
        let bytes = StoreSnapshot::write_to_path(&store, &tries, path)?;
        crash_point("engine-save-renamed");
        if let (Some(wal), Some(seq)) = (&self.wal, wal_seq) {
            Self::lock_wal(wal)
                .truncate_through(seq)
                .map_err(|e| SnapshotError::Io(std::io::Error::other(e.to_string())))?;
        }
        Ok((bytes, store.num_triples()))
    }

    /// Attach (or create) a write-ahead log at `path`, first replaying
    /// any records it holds through the staging machinery — the restart
    /// protocol is: load snapshot, `open_wal`, serve. Replayed batches
    /// stage exactly like live traffic (deltas, threshold compaction,
    /// epoch bumps) but are not re-appended to the log. The fsync
    /// policy comes from [`PlannerConfig::wal_fsync`].
    ///
    /// A torn final record (crash mid-append) is dropped with a warning
    /// and the file truncated to the last clean frame; corruption
    /// anywhere earlier refuses with [`WalError::Corrupt`] rather than
    /// replaying around a hole.
    pub fn open_wal(&mut self, path: impl AsRef<Path>) -> Result<WalRecovery, WalError> {
        assert!(self.wal.is_none(), "engine already has a wal attached");
        let (wal, scan) = Wal::open(path.as_ref(), self.config.wal_fsync)?;
        let mut recovery = WalRecovery {
            base_seq: scan.base_seq,
            last_seq: scan.last_seq(),
            torn_tail_dropped: scan.torn.is_some(),
            ..WalRecovery::default()
        };
        for record in &scan.records {
            let (deletes, inserts) = eh_rdf::decode_update(&record.payload).map_err(|e| {
                WalError::Corrupt { seq: record.seq, offset: 0, reason: payload_decode_reason(&e) }
            })?;
            let summary = self.apply_batch(UpdateBatch { inserts, deletes });
            recovery.replayed += 1;
            recovery.inserted += summary.inserted;
            recovery.deleted += summary.deleted;
        }
        self.wal = Some(Mutex::new(wal));
        Ok(recovery)
    }

    /// Replay a *foreign* log file through [`Engine::update`] — the
    /// `REPLAY <path>` verb, and the replica catch-up entry point: a
    /// follower replays the primary's shipped log tail, and if the
    /// follower has its own WAL attached the replayed batches are
    /// logged there like any other write.
    pub fn replay(&self, path: impl AsRef<Path>) -> Result<WalRecovery, WalError> {
        let scan = eh_wal::scan_path(path.as_ref())?;
        let mut recovery = WalRecovery {
            base_seq: scan.base_seq,
            last_seq: scan.last_seq(),
            torn_tail_dropped: scan.torn.is_some(),
            ..WalRecovery::default()
        };
        for record in &scan.records {
            let (deletes, inserts) = eh_rdf::decode_update(&record.payload).map_err(|e| {
                WalError::Corrupt { seq: record.seq, offset: 0, reason: payload_decode_reason(&e) }
            })?;
            let summary = self.try_update(UpdateBatch { inserts, deletes })?;
            recovery.replayed += 1;
            recovery.inserted += summary.inserted;
            recovery.deleted += summary.deleted;
        }
        Ok(recovery)
    }

    /// Current WAL observables, `None` when no log is attached.
    pub fn wal_status(&self) -> Option<WalStatus> {
        self.wal.as_ref().map(|wal| {
            let w = Self::lock_wal(wal);
            WalStatus { seq: w.last_seq(), bytes: w.log_bytes(), fsync: w.policy() }
        })
    }

    /// Read access to the underlying store. The guard is cheap; hold it
    /// only for short lookups (term resolution, row decoding), not across
    /// another engine call.
    pub fn store(&self) -> RwLockReadGuard<'_, TripleStore> {
        self.catalog.store().read()
    }

    /// A clone of the shared store handle.
    pub fn shared_store(&self) -> SharedStore {
        self.catalog.store().clone()
    }

    /// Redistribute the store across `max(1, partitions)` subject-hash
    /// shards and retire every cached trie and overlay (placement moved;
    /// logical contents did not, so query answers are unchanged). A
    /// request matching the current partitioning is a free no-op.
    /// Returns the partition count now in effect.
    pub fn repartition(&self, partitions: usize) -> usize {
        let shared = self.catalog.store();
        {
            let mut store = shared.write();
            if store.partitions() == partitions.max(1) {
                return store.partitions();
            }
            store.repartition(partitions);
        }
        // Version first, then the full clear: invalidate records the
        // version it covered, so the next epoch read does not double-pay
        // a foreign-update invalidation.
        shared.bump_version();
        self.catalog.invalidate();
        partitions.max(1)
    }

    /// The planner configuration.
    pub fn config(&self) -> PlannerConfig {
        self.config
    }

    /// The trie catalog — the hook a caching layer needs: its
    /// [`epoch`](Catalog::epoch) versions derived-result caches and
    /// [`invalidate`](Catalog::invalidate) retires them.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Apply a batch of live updates: deletions first, then insertions
    /// (SPARQL Update convention), atomically under the store's write
    /// lock. The batch is **staged** LSM-style — sorted per-predicate
    /// delta sets of inserts and tombstones — in O(delta) time, without
    /// rebuilding any base table or re-freezing any trie: queries serve
    /// the novelty by handing each delta to the multiway driver as one
    /// more set operand. Only a predicate whose accumulated delta crosses
    /// [`PlannerConfig::compaction_threshold`] is folded into a fresh
    /// base table (and its cached tries rebuilt) as part of the batch.
    /// The epoch advances once per batch; a batch that changes nothing —
    /// duplicates of resident triples, deletions of absent ones — leaves
    /// deltas, epoch, and downstream caches untouched.
    ///
    /// With a log attached ([`Engine::open_wal`]) the encoded batch is
    /// appended — and pushed to stable storage per the configured
    /// [`FsyncPolicy`] — *before* any delta stages, so an acknowledged
    /// batch survives a crash. A WAL I/O failure is fail-stop here
    /// (panic): acknowledging an unlogged batch would be a silent
    /// durability hole. Use [`Engine::try_update`] to handle it.
    pub fn update(&self, batch: UpdateBatch) -> UpdateSummary {
        self.try_update(batch).unwrap_or_else(|e| {
            panic!("wal append failed; refusing to apply an unlogged batch: {e}")
        })
    }

    /// [`Engine::update`] with WAL failures surfaced instead of
    /// panicking. Without an attached log this cannot fail.
    pub fn try_update(&self, batch: UpdateBatch) -> Result<UpdateSummary, WalError> {
        let Some(wal) = &self.wal else { return Ok(self.apply_batch(batch)) };
        // Hold the wal lock across append *and* staging: append order
        // is apply order, so replay reproduces exactly the live
        // sequence of store states. No-op batches are logged too —
        // their replay is a no-op, and deciding no-op-ness up front
        // would need the store lock this method must not take first.
        let mut wal = Self::lock_wal(wal);
        let info =
            wal.append_with(|buf| eh_rdf::encode_update_into(buf, &batch.deletes, &batch.inserts))?;
        let mut summary = self.apply_batch(batch);
        crash_point("engine-staged");
        summary.wal = Some(WalAppend {
            seq: info.seq,
            wal_bytes: info.wal_bytes,
            fsynced: info.fsynced,
            fsync_us: info.fsync_us,
        });
        Ok(summary)
    }

    /// The wal mutex is only poisoned when a writer died between its
    /// append and its staging; the next append would then follow a
    /// frame whose batch never applied, silently diverging log from
    /// store. Fail-stop and let recovery replay the log.
    fn lock_wal(wal: &Mutex<Wal>) -> MutexGuard<'_, Wal> {
        wal.lock().unwrap_or_else(|_| {
            panic!("wal mutex poisoned: a writer died mid-update; restart and recover")
        })
    }

    /// Stage one batch into the live store (the non-durable inner half
    /// of [`Engine::update`]; WAL replay calls this directly so
    /// recovered batches are *not* re-appended to the log they came
    /// from).
    fn apply_batch(&self, batch: UpdateBatch) -> UpdateSummary {
        let shared = self.catalog.store();
        let (report, compacted, version) = {
            let mut store = shared.write();
            let mut report = store.stage_remove_triples(batch.deletes);
            report.merge(store.stage_add_triples(batch.inserts));
            if report.is_empty() {
                (report, (Vec::new(), Vec::new(), Vec::new()), 0)
            } else {
                // Threshold compaction, still under the write lock, at
                // shard granularity: fold exactly the (predicate, shard)
                // deltas that grew past max(absolute floor, frac% of that
                // shard's base table). A skewed shard folds alone — every
                // other shard's tries and deltas are untouched, and the
                // pause is recorded against the shard that caused it.
                // Everything below the threshold stays an overlay.
                let partitions = store.partitions();
                let mut compacted: Vec<(u32, usize)> = Vec::new();
                let mut shard_pauses: Vec<(usize, u64)> = Vec::new();
                for &p in &report.changed_preds {
                    for s in 0..partitions {
                        let staged = store.shard_delta_len(s, p);
                        if staged == 0 {
                            continue;
                        }
                        let base = store.shard_table(s, p).map_or(0, |t| t.len());
                        if staged >= self.config.compaction_threshold(base) {
                            let t0 = Instant::now();
                            store.compact_pred_in(s, p);
                            let us = t0.elapsed().as_micros() as u64;
                            match shard_pauses.iter_mut().find(|(sh, _)| *sh == s) {
                                Some(e) => e.1 += us,
                                None => shard_pauses.push((s, us)),
                            }
                            compacted.push((p, s));
                        }
                    }
                }
                // Predicates with any delta left after the folds still
                // serve part of their novelty as an overlay.
                let staged: Vec<u32> = report
                    .changed_preds
                    .iter()
                    .copied()
                    .filter(|&p| store.delta_len(p) > 0)
                    .collect();
                // Bump while the write lock is still held: any reader
                // that can observe the new data can also observe the new
                // version, so sibling catalogs over this store can't keep
                // serving their now-stale view (see SharedStore docs).
                // Our own catalog claims the version immediately — the
                // precise refresh below covers it, and readers racing
                // into the gap must not full-invalidate on the skew.
                let version = shared.bump_version();
                self.catalog.claim_version(version);
                (report, (compacted, staged, shard_pauses), version)
            }
        };
        let (compacted, staged, shard_pauses) = compacted;
        if report.is_empty() {
            return UpdateSummary {
                inserted: 0,
                deleted: 0,
                changed_predicates: 0,
                rebuilt_tries: 0,
                compacted_predicates: 0,
                epoch: self.catalog.epoch(),
                shard_pauses: Vec::new(),
                wal: None,
            };
        }
        let (epoch, rebuilt) =
            self.catalog.refresh_after_update(&staged, &compacted, version, self.config.runtime);
        let mut compacted_preds: Vec<u32> = compacted.iter().map(|&(p, _)| p).collect();
        compacted_preds.dedup();
        UpdateSummary {
            inserted: report.added,
            deleted: report.removed,
            changed_predicates: report.changed_preds.len(),
            rebuilt_tries: rebuilt,
            compacted_predicates: compacted_preds.len(),
            epoch,
            shard_pauses,
            wal: None,
        }
    }

    /// Fold every staged delta into fresh base tables and rebuild the
    /// affected cached tries — the off-hot-path compaction entry point a
    /// serving tier calls from its maintenance trigger (or a caller who
    /// wants overlay memory back). No-op (epoch untouched) when nothing
    /// is staged.
    pub fn compact(&self) -> UpdateSummary {
        let shared = self.catalog.store();
        let (pairs, shard_pauses, version) = {
            let mut store = shared.write();
            // Fold shard by shard so the pause attribution matches the
            // shard-local storage: each shard's fold only touches its own
            // tables and is timed on its own.
            let partitions = store.partitions();
            let mut pairs: Vec<(u32, usize)> = Vec::new();
            let mut shard_pauses: Vec<(usize, u64)> = Vec::new();
            for s in 0..partitions {
                let t0 = Instant::now();
                let preds = store.compact_shard(s);
                if !preds.is_empty() {
                    shard_pauses.push((s, t0.elapsed().as_micros() as u64));
                    pairs.extend(preds.into_iter().map(|p| (p, s)));
                }
            }
            if pairs.is_empty() {
                (pairs, shard_pauses, 0)
            } else {
                // Same protocol as `update`: compaction changes which
                // physical structures serve each predicate, so sibling
                // catalogs holding (base trie + now-vanished delta) views
                // must observe the version move.
                let version = shared.bump_version();
                self.catalog.claim_version(version);
                (pairs, shard_pauses, version)
            }
        };
        if pairs.is_empty() {
            return UpdateSummary {
                inserted: 0,
                deleted: 0,
                changed_predicates: 0,
                rebuilt_tries: 0,
                compacted_predicates: 0,
                epoch: self.catalog.epoch(),
                shard_pauses: Vec::new(),
                wal: None,
            };
        }
        let (epoch, rebuilt) =
            self.catalog.refresh_after_update(&[], &pairs, version, self.config.runtime);
        let mut preds: Vec<u32> = pairs.iter().map(|&(p, _)| p).collect();
        preds.sort_unstable();
        preds.dedup();
        UpdateSummary {
            inserted: 0,
            deleted: 0,
            changed_predicates: preds.len(),
            rebuilt_tries: rebuilt,
            compacted_predicates: preds.len(),
            epoch,
            shard_pauses,
            wal: None,
        }
    }

    /// Plan a query without running it.
    pub fn plan(&self, q: &ConjunctiveQuery) -> Result<Plan, EngineError> {
        if q.projection().is_empty() {
            return Err(EngineError::EmptyProjection);
        }
        Ok(build_plan_with(q, self.config, Some(&self.store())))
    }

    /// Plan and execute a query.
    pub fn run(&self, q: &ConjunctiveQuery) -> Result<QueryResult, EngineError> {
        let plan = self.plan(q)?;
        Ok(self.run_plan(q, &plan))
    }

    /// Execute a previously built plan (on the configured runtime:
    /// sequential by default, morsel-parallel when
    /// [`PlannerConfig::with_threads`] asked for workers).
    ///
    /// Execution fetches tries lazily, so a multi-predicate update
    /// landing *mid-join* could otherwise mix pre- and post-update tries
    /// into one answer that matches no store state. The epoch bracket
    /// below closes that: if the epoch moved while the join ran, the
    /// result is discarded and the join re-executes against the settled
    /// catalog.
    ///
    /// Retries are bounded: a sustained writer whose inter-batch gap is
    /// shorter than this query's runtime would otherwise starve the
    /// reader forever. After the last retry the result is returned as a
    /// best-effort answer — each trie in it is still an immutable
    /// snapshot of its own predicate, but tries of different predicates
    /// may straddle adjacent updates. Only workloads updating faster than
    /// they can run a single join ever see this.
    pub fn run_plan(&self, q: &ConjunctiveQuery, plan: &Plan) -> QueryResult {
        if obs_forced() {
            return self.run_plan_profiled(q, plan).0;
        }
        let mut attempts = 0;
        loop {
            let epoch = self.catalog.epoch();
            let result = execute_plan(
                &self.catalog,
                q,
                plan,
                self.config.flags.layouts,
                self.config.runtime,
                None,
            );
            attempts += 1;
            if self.catalog.epoch() == epoch || attempts > MID_JOIN_UPDATE_RETRIES {
                return result;
            }
        }
    }

    /// Execute a previously built plan with full profiling: same retry
    /// semantics as [`Engine::run_plan`], but every join records kernel
    /// dispatches, candidate counts, probes, and wall times. Each retry
    /// attempt starts a fresh collector, so the returned profile describes
    /// exactly the attempt whose result is returned (plus how many
    /// attempts were discarded in `epoch_retries`).
    pub fn run_plan_profiled(
        &self,
        q: &ConjunctiveQuery,
        plan: &Plan,
    ) -> (QueryResult, QueryProfile) {
        let threads = self.config.runtime.num_threads;
        let t0 = Instant::now();
        let mut retries = 0u64;
        loop {
            let stats = ExecStats::new(threads);
            let epoch = self.catalog.epoch();
            let result = execute_plan(
                &self.catalog,
                q,
                plan,
                self.config.flags.layouts,
                self.config.runtime,
                Some(&stats),
            );
            if self.catalog.epoch() == epoch || retries >= MID_JOIN_UPDATE_RETRIES {
                let profile = stats.snapshot(threads, t0.elapsed().as_nanos() as u64, retries);
                return (result, profile);
            }
            retries += 1;
        }
    }

    /// Plan, execute, and profile a query (see
    /// [`Engine::run_plan_profiled`]).
    pub fn profile(
        &self,
        q: &ConjunctiveQuery,
    ) -> Result<(QueryResult, QueryProfile), EngineError> {
        let plan = self.plan(q)?;
        Ok(self.run_plan_profiled(q, &plan))
    }

    /// Parse a SPARQL query against this engine's store and run it.
    pub fn run_sparql(&self, text: &str) -> Result<QueryResult, EngineError> {
        let q = {
            let store = self.store();
            parse_sparql(text, &store)?
        };
        self.run(&q)
    }

    /// Pre-build the tries a query needs, so a subsequent timed
    /// [`Engine::run`] measures join execution, not index construction —
    /// the paper's timing methodology (§IV-A4) excludes index build time.
    ///
    /// Distinct tries build **concurrently** on the configured runtime's
    /// workers (EmptyHeaded's trie construction is parallel too): the
    /// catalog is shared under `&self`, its lock taken only to publish
    /// each finished trie.
    pub fn warm(&self, q: &ConjunctiveQuery) -> Result<(), EngineError> {
        let plan = self.plan(q)?;
        // One build job per distinct (predicate, column order); duplicate
        // atoms over the same table would otherwise race to build the
        // same trie redundantly.
        let mut jobs: Vec<(u32, bool, usize)> = plan
            .nodes
            .iter()
            .flat_map(|node| node.atoms.iter())
            .map(|ap| (q.atoms()[ap.atom_index].pred, ap.subject_first, ap.atom_index))
            .collect();
        jobs.sort_unstable();
        jobs.dedup_by_key(|&mut (pred, subject_first, _)| (pred, subject_first));
        // Each shard's trie is its own arena and its own build job — the
        // fan-out dimension is (predicate, order) × shard.
        let partitions = self.catalog.partitions();
        eh_par::run_tasks(self.config.runtime.num_threads, jobs.len() * partitions, |i| {
            let (_, subject_first, atom_index) = jobs[i / partitions];
            self.catalog.warm_shard(
                &q.atoms()[atom_index],
                subject_first,
                self.config.flags.layouts,
                i % partitions,
            );
        });
        Ok(())
    }

    /// Human-readable plan explanation: the GHD, global attribute order,
    /// width and pipelining decision, plus per-atom base cardinalities
    /// and the chosen trie orders — the `EXPLAIN` a downstream user would
    /// expect.
    pub fn explain(&self, q: &ConjunctiveQuery) -> Result<String, EngineError> {
        let plan = self.plan(q)?;
        Ok(self.explain_with(q, &plan))
    }

    /// Render an already-built plan (the body shared by
    /// [`Engine::explain`] and [`Engine::explain_analyze`]).
    fn explain_with(&self, q: &ConjunctiveQuery, plan: &Plan) -> String {
        use std::fmt::Write;
        let mut out = plan.render(q);
        let _ = writeln!(out, "atom access paths:");
        for node in &plan.nodes {
            for ap in &node.atoms {
                let atom = &q.atoms()[ap.atom_index];
                let short = atom.relation.rsplit(['/', '#']).next().unwrap_or(&atom.relation);
                let order = if ap.subject_first { "[s, o]" } else { "[o, s]" };
                let _ = writeln!(
                    out,
                    "  {short}: trie {order}, {} tuples",
                    self.catalog.cardinality(atom)
                );
            }
        }
        out
    }

    /// Parse and explain a SPARQL query (see [`Engine::explain`]).
    pub fn explain_sparql(&self, text: &str) -> Result<String, EngineError> {
        let q = {
            let store = self.store();
            parse_sparql(text, &store)?
        };
        self.explain(&q)
    }

    /// `EXPLAIN ANALYZE`: the static plan explanation followed by the
    /// measured execution profile of an actual run — per-depth kernel
    /// choices, candidate counts, probe counts, wall times — and the
    /// result cardinality. Volatile (timing) lines are `~`-prefixed; the
    /// rest is schedule-invariant across thread counts.
    pub fn explain_analyze(&self, q: &ConjunctiveQuery) -> Result<String, EngineError> {
        use std::fmt::Write;
        let plan = self.plan(q)?;
        let (result, profile) = self.run_plan_profiled(q, &plan);
        let mut out = self.explain_with(q, &plan);
        out.push_str(&profile.render());
        let _ = writeln!(out, "result rows: {}", result.cardinality());
        Ok(out)
    }

    /// Parse and `EXPLAIN ANALYZE` a SPARQL query (see
    /// [`Engine::explain_analyze`]).
    pub fn explain_analyze_sparql(&self, text: &str) -> Result<String, EngineError> {
        let q = {
            let store = self.store();
            parse_sparql(text, &store)?
        };
        self.explain_analyze(&q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eh_query::QueryBuilder;
    use eh_rdf::{Term, Triple};

    fn edge(s: u32, o: u32) -> Triple {
        Triple::new(Term::iri(format!("n{s}")), Term::iri("edge"), Term::iri(format!("n{o}")))
    }

    /// A small graph with two triangles: (0,1,2) and (1,2,3).
    fn triangle_store() -> SharedStore {
        SharedStore::from_triples(vec![edge(0, 1), edge(1, 2), edge(0, 2), edge(1, 3), edge(2, 3)])
    }

    fn triangle_query(store: &TripleStore) -> ConjunctiveQuery {
        let pred = store.resolve_iri("edge").unwrap();
        let mut qb = QueryBuilder::new();
        let (x, y, z) = (qb.var("x"), qb.var("y"), qb.var("z"));
        qb.atom("edge", pred, x, y).atom("edge", pred, y, z).atom("edge", pred, x, z);
        qb.select(vec![x, y, z]).build().unwrap()
    }

    #[test]
    fn triangle_listing_all_flag_combinations() {
        let store = triangle_store();
        let q = triangle_query(&store.read());
        for k in 0..=4 {
            let engine = Engine::new(store.clone(), OptFlags::cumulative(k));
            let r = engine.run(&q).unwrap();
            let rows: Vec<Vec<u32>> = r.iter().map(|t| t.to_vec()).collect();
            assert_eq!(rows.len(), 2, "flags {k}: {rows:?}");
        }
        // LogicBlox-style single node agrees.
        let engine = Engine::with_config(store.clone(), PlannerConfig::logicblox_style());
        assert_eq!(engine.run(&q).unwrap().cardinality(), 2);
    }

    #[test]
    fn triangle_results_decode() {
        let store = triangle_store();
        let q = triangle_query(&store.read());
        let engine = Engine::new(store.clone(), OptFlags::all());
        let r = engine.run(&q).unwrap();
        let guard = store.read();
        let decoded: Vec<String> =
            r.decode_row(&guard, 0).into_iter().map(|t| t.as_str().to_string()).collect();
        assert_eq!(decoded, vec!["n0", "n1", "n2"]);
    }

    #[test]
    fn sparql_end_to_end() {
        let store = triangle_store();
        let engine = Engine::new(store.clone(), OptFlags::all());
        let r = engine.run_sparql("SELECT ?x ?y WHERE { ?x <edge> ?y . ?y <edge> ?x }").unwrap();
        // No 2-cycles in the triangle store.
        assert_eq!(r.cardinality(), 0);
        let r2 = engine.run_sparql("SELECT ?x WHERE { ?x <edge> <n3> }").unwrap();
        assert_eq!(r2.cardinality(), 2);
    }

    #[test]
    fn missing_constant_is_empty_not_error() {
        let store = triangle_store();
        let engine = Engine::new(store.clone(), OptFlags::all());
        let r = engine.run_sparql("SELECT ?x WHERE { ?x <edge> <nowhere> }").unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn empty_projection_rejected() {
        let store = triangle_store();
        let q = {
            let mut qb = QueryBuilder::new();
            let (x, y) = (qb.var("x"), qb.var("y"));
            let pred = store.read().resolve_iri("edge").unwrap();
            qb.atom("edge", pred, x, y);
            qb.build().unwrap()
        };
        let engine = Engine::new(store.clone(), OptFlags::all());
        assert_eq!(engine.run(&q).unwrap_err(), EngineError::EmptyProjection);
    }

    #[test]
    fn warm_populates_cache() {
        let store = triangle_store();
        let q = triangle_query(&store.read());
        let engine = Engine::new(store.clone(), OptFlags::all());
        engine.warm(&q).unwrap();
        let r = engine.run(&q).unwrap();
        assert_eq!(r.cardinality(), 2);
    }

    #[test]
    fn parallel_execution_is_bit_identical() {
        let store = triangle_store();
        let q = triangle_query(&store.read());
        let reference = Engine::new(store.clone(), OptFlags::all()).run(&q).unwrap();
        for threads in [2, 4] {
            for flags in [OptFlags::all(), OptFlags::none()] {
                let config = PlannerConfig::with_flags(flags)
                    .with_runtime(eh_par::RuntimeConfig::with_threads(threads).with_morsel_size(1));
                let engine = Engine::with_config(store.clone(), config);
                engine.warm(&q).unwrap();
                let r = engine.run(&q).unwrap();
                assert_eq!(r, reference, "threads {threads}, flags {flags:?}");
            }
        }
    }

    #[test]
    fn parallel_warm_builds_each_trie_once() {
        let store = triangle_store();
        let q = triangle_query(&store.read());
        let engine = Engine::with_config(
            store.clone(),
            PlannerConfig::with_flags(OptFlags::all()).with_threads(4),
        );
        engine.warm(&q).unwrap();
        // Three self-join atoms over one predicate share at most two trie
        // orders; the jobs were deduplicated before fan-out.
        assert!(engine.catalog.cached_tries() <= 2);
        assert_eq!(engine.run(&q).unwrap().cardinality(), 2);
    }

    #[test]
    fn update_applies_batch_and_reports_real_change() {
        let store = triangle_store();
        let engine = Engine::new(store.clone(), OptFlags::all());
        let q = triangle_query(&store.read());
        assert_eq!(engine.run(&q).unwrap().cardinality(), 2);

        // Delete one edge of the second triangle, insert a duplicate
        // (no-op) and one fresh edge closing a new triangle (0, 2, 3).
        let mut batch = UpdateBatch::new();
        batch.delete(edge(1, 3)).insert(edge(0, 1)).insert(edge(0, 3));
        let summary = engine.update(batch);
        assert_eq!((summary.inserted, summary.deleted, summary.changed_predicates), (1, 1, 1));
        assert_eq!(summary.epoch, 1);
        assert_eq!(engine.catalog().epoch(), 1);
        assert_eq!(engine.run(&q).unwrap().cardinality(), 2); // (0,1,2) and (0,2,3)

        // A no-op batch leaves the epoch alone.
        let mut noop = UpdateBatch::new();
        noop.insert(edge(0, 1)).delete(edge(7, 9));
        assert_eq!(engine.update(noop).epoch, 1);
        assert_eq!(engine.catalog().epoch(), 1);
    }

    #[test]
    fn staged_update_is_o_delta_and_compact_folds() {
        let store = triangle_store();
        let engine = Engine::new(store.clone(), OptFlags::all());
        let q = triangle_query(&store.read());
        assert_eq!(engine.run(&q).unwrap().cardinality(), 2);

        let mut batch = UpdateBatch::new();
        batch.insert(edge(0, 3)).delete(edge(1, 3));
        let s = engine.update(batch);
        // Below the compaction threshold the batch stays an overlay: no
        // base table merged, no trie re-frozen — O(delta) apply.
        assert_eq!((s.inserted, s.deleted), (1, 1));
        assert_eq!((s.rebuilt_tries, s.compacted_predicates), (0, 0));
        assert!(engine.store().has_deltas());
        // Queries answer the merged (base − del) ∪ ins view: deleting
        // (1,3) kills triangle (1,2,3), inserting (0,3) closes (0,2,3).
        assert_eq!(engine.run(&q).unwrap().cardinality(), 2);

        // Explicit compaction folds the overlay into fresh base tables
        // and rebuilds the affected cached tries; answers are unchanged.
        let before = engine.run(&q).unwrap();
        let c = engine.compact();
        assert_eq!(c.compacted_predicates, 1);
        assert!(c.rebuilt_tries >= 1, "cached orders of the predicate rebuild");
        assert!(!engine.store().has_deltas());
        assert_eq!(engine.run(&q).unwrap(), before);
        // Compacting an already-compacted store is a no-op on the epoch.
        assert_eq!(engine.compact().epoch, c.epoch);
    }

    #[test]
    fn tiny_compaction_threshold_folds_inline() {
        let store = triangle_store();
        let config = PlannerConfig::with_flags(OptFlags::all()).with_compaction(1, 1);
        let engine = Engine::with_config(store.clone(), config);
        let q = triangle_query(&store.read());
        assert_eq!(engine.run(&q).unwrap().cardinality(), 2);
        let mut batch = UpdateBatch::new();
        batch.insert(edge(0, 3));
        let s = engine.update(batch);
        assert_eq!((s.changed_predicates, s.compacted_predicates), (1, 1));
        assert!(!engine.store().has_deltas());
        assert_eq!(engine.run(&q).unwrap().cardinality(), 4);
    }

    #[test]
    fn snapshot_with_deltas_resident_round_trips_logical_contents() {
        let store = triangle_store();
        let engine = Engine::new(store.clone(), OptFlags::all());
        let q = triangle_query(&store.read());
        let mut batch = UpdateBatch::new();
        batch.insert(edge(0, 3)).delete(edge(1, 3));
        engine.update(batch);
        assert!(engine.store().has_deltas());
        let reference = engine.run(&q).unwrap();

        let path =
            std::env::temp_dir().join(format!("eh-engine-delta-snap-{}.snap", std::process::id()));
        engine.save_snapshot(&path).unwrap();
        let restored = Engine::from_snapshot(&path, PlannerConfig::with_flags(OptFlags::all()))
            .expect("snapshot loads");
        std::fs::remove_file(&path).ok();
        // The image carries the delta-merged contents even though the
        // snapshot format encodes base tables only.
        assert_eq!(restored.run(&q).unwrap(), reference);
        assert!(!restored.store().has_deltas());
        // Saving compacted only the private clone; the live overlay stays.
        assert!(engine.store().has_deltas());
    }

    /// Several engines over one [`SharedStore`]: an update applied
    /// through one must be observed by the others (their catalogs detect
    /// the store-version skew and retire their tries), not served stale
    /// from tries built before the foreign update.
    #[test]
    fn sibling_engines_observe_foreign_updates() {
        let store = triangle_store();
        let writer = Engine::new(store.clone(), OptFlags::all());
        let reader = Engine::new(store.clone(), OptFlags::all());
        let q = triangle_query(&store.read());
        // Warm the reader's catalog so it has pre-update tries cached.
        assert_eq!(reader.run(&q).unwrap().cardinality(), 2);
        assert_eq!(reader.catalog().epoch(), 0);

        let mut batch = UpdateBatch::new();
        batch.insert(edge(0, 3));
        writer.update(batch);

        // The reader's next answer reflects the new data — edge (0, 3)
        // closes triangles (0, 1, 3) and (0, 2, 3) on top of the original
        // two — and its epoch moved, so a serving tier's result cache
        // over it misses too.
        assert_eq!(reader.run(&q).unwrap().cardinality(), 4);
        assert_eq!(reader.catalog().epoch(), 1);
        assert_eq!(writer.run(&q).unwrap().cardinality(), 4);
    }

    #[test]
    fn snapshot_restart_starts_warm_and_answers_identically() {
        let store = triangle_store();
        let engine = Engine::new(store.clone(), OptFlags::all());
        let q = triangle_query(&store.read());
        let reference = engine.run(&q).unwrap();

        let path = std::env::temp_dir().join(format!("eh-engine-snap-{}.snap", std::process::id()));
        engine.save_snapshot(&path).unwrap();
        let restored = Engine::from_snapshot(&path, PlannerConfig::with_flags(OptFlags::all()))
            .expect("snapshot loads");
        std::fs::remove_file(&path).ok();

        // Preloaded: the hot orders are already cached, before any query.
        assert!(restored.catalog().cached_tries() >= 2);
        assert_eq!(restored.run(&q).unwrap(), reference);

        // The loaded store stays live: updates thaw only what changed.
        let mut batch = UpdateBatch::new();
        batch.insert(edge(0, 3));
        let summary = restored.update(batch);
        assert_eq!(summary.inserted, 1);
        assert_eq!(restored.run(&q).unwrap().cardinality(), 4);
        // And a writer on the original engine sees independent state.
        assert_eq!(engine.run(&q).unwrap(), reference);
    }

    #[test]
    fn mmap_snapshot_restart_matches_copy_restart() {
        let store = triangle_store();
        let engine = Engine::new(store.clone(), OptFlags::all());
        let q = triangle_query(&store.read());
        let reference = engine.run(&q).unwrap();

        let path =
            std::env::temp_dir().join(format!("eh-engine-mmap-snap-{}.snap", std::process::id()));
        engine.save_snapshot(&path).unwrap();
        let config = || PlannerConfig::with_flags(OptFlags::all());
        let copied = Engine::from_snapshot(&path, config()).expect("copy load");
        let mapped = Engine::from_snapshot_mmap(&path, config()).expect("mmap load");

        assert!(copied.load_info().is_some_and(|l| l.mode == eh_rdf::LoadMode::Copy));
        let info = mapped.load_info().expect("snapshot engine records load info");
        assert_eq!(info.mode, eh_rdf::LoadMode::Mmap);
        assert!(info.mapped_bytes > 0 && info.fallback.is_none());
        assert!(engine.load_info().is_none(), "cold-built engine has no load info");

        // Identical answers, and the mapped engine stays fully live:
        // update, query the overlay, compact, re-save — all while its
        // base tries point into the mapping.
        assert_eq!(mapped.run(&q).unwrap(), reference);
        assert_eq!(copied.run(&q).unwrap(), reference);
        let mut batch = UpdateBatch::new();
        batch.insert(edge(0, 3));
        mapped.update(batch);
        assert_eq!(mapped.run(&q).unwrap().cardinality(), 4);
        mapped.compact();
        assert_eq!(mapped.run(&q).unwrap().cardinality(), 4);
        mapped.save_snapshot(&path).expect("re-save over the mapped path");
        let reread = Engine::from_snapshot_mmap(&path, config()).expect("reload");
        assert_eq!(reread.run(&q).unwrap().cardinality(), 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn explain_lists_access_paths() {
        let store = triangle_store();
        let engine = Engine::new(store.clone(), OptFlags::all());
        let text =
            engine.explain_sparql("SELECT ?x ?y WHERE { ?x <edge> ?y . ?y <edge> <n3> }").unwrap();
        assert!(text.contains("global attribute order"), "{text}");
        assert!(text.contains("atom access paths"), "{text}");
        assert!(text.contains("edge: trie"), "{text}");
        assert!(text.contains("5 tuples"), "{text}");
    }

    #[test]
    fn profile_counts_are_identical_across_thread_counts() {
        let store = triangle_store();
        let q = triangle_query(&store.read());
        let engine = Engine::new(store.clone(), OptFlags::all());
        let (r, p) = engine.profile(&q).unwrap();
        assert_eq!(r.cardinality(), 2);
        assert!(!p.joins.is_empty());
        let totals = p.kernel_totals();
        assert!(totals.dispatches() + totals.single_iter > 0, "{totals:?}");
        let stable = |p: &crate::QueryProfile| {
            p.render()
                .lines()
                .filter(|l| !l.trim_start().starts_with('~'))
                .collect::<Vec<_>>()
                .join("\n")
        };
        for threads in [2, 4] {
            let config = PlannerConfig::with_flags(OptFlags::all())
                .with_runtime(eh_par::RuntimeConfig::with_threads(threads).with_morsel_size(1));
            let engine_t = Engine::with_config(store.clone(), config);
            let (r_t, p_t) = engine_t.profile(&q).unwrap();
            assert_eq!(r_t.cardinality(), 2);
            assert_eq!(p_t.kernel_totals(), totals, "threads {threads}");
            assert_eq!(stable(&p_t), stable(&p), "threads {threads}");
        }
    }

    #[test]
    fn explain_analyze_appends_profile_to_plan() {
        let store = triangle_store();
        let engine = Engine::new(store.clone(), OptFlags::all());
        let text = engine
            .explain_analyze_sparql(
                "SELECT ?x ?y ?z WHERE { ?x <edge> ?y . ?y <edge> ?z . ?x <edge> ?z }",
            )
            .unwrap();
        assert!(text.contains("atom access paths"), "{text}");
        assert!(text.contains("profile:"), "{text}");
        assert!(text.contains("kernels {"), "{text}");
        assert!(text.contains("result rows: 2"), "{text}");
    }

    #[test]
    fn path_query_projection_order_and_dedup() {
        let store = triangle_store();
        let pred = store.read().resolve_iri("edge").unwrap();
        let mut qb = QueryBuilder::new();
        let (x, y, z) = (qb.var("x"), qb.var("y"), qb.var("z"));
        qb.atom("edge", pred, x, y).atom("edge", pred, y, z);
        // Project z before x, dropping y: forces permutation + dedup.
        let q = qb.select(vec![z, x]).build().unwrap();
        for flags in [OptFlags::all(), OptFlags::none()] {
            let engine = Engine::new(store.clone(), flags);
            let r = engine.run(&q).unwrap();
            let rows: Vec<Vec<u32>> = r.iter().map(|t| t.to_vec()).collect();
            // Paths of length 2: 0->1->2, 0->1->3, 0->2->3, 1->2->3; on
            // (z, x) the pairs (3,0) from the middle two collapse,
            // leaving (2,0), (3,0), (3,1).
            assert_eq!(rows.len(), 3, "{rows:?}");
            assert_eq!(r.columns(), &["z".to_string(), "x".to_string()]);
        }
    }

    fn temp_path(tag: &str, ext: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("eh-engine-{tag}-{}.{ext}", std::process::id()))
    }

    /// Every answer the triangle query gives, decoded — the byte-level
    /// equality oracle the durability tests compare engines with.
    fn answer(engine: &Engine) -> Vec<Vec<u32>> {
        let q = triangle_query(&engine.store());
        engine.run(&q).unwrap().iter().map(|t| t.to_vec()).collect()
    }

    #[test]
    fn wal_recovery_replays_unsaved_updates() {
        let wal_path = temp_path("wal-recover", "wal");
        std::fs::remove_file(&wal_path).ok();

        // Writer: empty WAL attached, two batches logged, no SAVE.
        let mut writer = Engine::new(triangle_store(), OptFlags::all());
        let r = writer.open_wal(&wal_path).unwrap();
        assert_eq!((r.replayed, r.last_seq), (0, 0));
        let mut b1 = UpdateBatch::new();
        b1.insert(edge(0, 3)).delete(edge(1, 3));
        let s1 = writer.update(b1);
        let w1 = s1.wal.expect("logged update reports its wal append");
        assert_eq!(w1.seq, 1);
        assert!(w1.fsynced, "default policy is fsync=always");
        let mut b2 = UpdateBatch::new();
        b2.insert(edge(3, 0));
        assert_eq!(writer.update(b2).wal.unwrap().seq, 2);
        let reference = answer(&writer);
        let status = writer.wal_status().unwrap();
        assert_eq!(status.seq, 2);
        assert!(status.bytes > 24, "log holds frames past the header");

        // Restart: same base store, replay the log. Answers identical.
        let mut recovered = Engine::new(triangle_store(), OptFlags::all());
        let r = recovered.open_wal(&wal_path).unwrap();
        assert_eq!((r.replayed, r.base_seq, r.last_seq), (2, 0, 2));
        assert!(!r.torn_tail_dropped);
        assert_eq!((r.inserted, r.deleted), (2, 1));
        assert_eq!(answer(&recovered), reference);
        std::fs::remove_file(&wal_path).ok();
    }

    #[test]
    fn save_truncates_the_log_and_replay_after_save_is_idempotent() {
        let wal_path = temp_path("wal-save", "wal");
        let snap_path = temp_path("wal-save", "snap");
        std::fs::remove_file(&wal_path).ok();

        let mut writer = Engine::new(triangle_store(), OptFlags::all());
        writer.open_wal(&wal_path).unwrap();
        let mut batch = UpdateBatch::new();
        batch.insert(edge(0, 3));
        writer.update(batch);
        // Keep the pre-truncation log: this is exactly the file a crash
        // between the image rename and the truncation leaves behind.
        let stale_log = std::fs::read(&wal_path).unwrap();
        writer.save_snapshot(&snap_path).unwrap();
        let status = writer.wal_status().unwrap();
        // Truncation kept the sequence (base moved up) and dropped frames.
        assert_eq!((status.seq, status.bytes), (1, 24));
        let reference = answer(&writer);

        // Clean restart: snapshot + truncated (empty-tail) log.
        let mut clean = Engine::from_snapshot(&snap_path, PlannerConfig::default()).unwrap();
        let r = clean.open_wal(&wal_path).unwrap();
        assert_eq!((r.replayed, r.base_seq, r.last_seq), (0, 1, 1));
        assert_eq!(answer(&clean), reference);

        // Crashed-between restart: snapshot + the stale pre-truncation
        // log. The folded record replays as a no-op (set semantics).
        std::fs::write(&wal_path, &stale_log).unwrap();
        let mut crashed = Engine::from_snapshot(&snap_path, PlannerConfig::default()).unwrap();
        let r = crashed.open_wal(&wal_path).unwrap();
        assert_eq!((r.replayed, r.inserted, r.deleted), (1, 0, 0));
        assert_eq!(answer(&crashed), reference);
        std::fs::remove_file(&wal_path).ok();
        std::fs::remove_file(&snap_path).ok();
    }

    #[test]
    fn replay_applies_a_foreign_log_and_relogs_it() {
        let foreign_path = temp_path("wal-foreign", "wal");
        let own_path = temp_path("wal-own", "wal");
        std::fs::remove_file(&foreign_path).ok();
        std::fs::remove_file(&own_path).ok();

        // A primary writes two batches into its log.
        let mut primary = Engine::new(triangle_store(), OptFlags::all());
        primary.open_wal(&foreign_path).unwrap();
        let mut b = UpdateBatch::new();
        b.insert(edge(0, 3)).delete(edge(1, 3));
        primary.update(b);
        let mut b = UpdateBatch::new();
        b.insert(edge(3, 0));
        primary.update(b);

        // A follower with its own log replays the primary's: contents
        // converge AND the follower re-logged the batches for its own
        // downstream recovery.
        let mut follower = Engine::new(triangle_store(), OptFlags::all());
        follower.open_wal(&own_path).unwrap();
        let r = follower.replay(&foreign_path).unwrap();
        assert_eq!((r.replayed, r.inserted, r.deleted), (2, 2, 1));
        assert_eq!(answer(&follower), answer(&primary));
        assert_eq!(follower.wal_status().unwrap().seq, 2);

        // Replaying the same log again is idempotent on contents.
        let again = follower.replay(&foreign_path).unwrap();
        assert_eq!((again.replayed, again.inserted, again.deleted), (2, 0, 0));
        assert_eq!(answer(&follower), answer(&primary));
        std::fs::remove_file(&foreign_path).ok();
        std::fs::remove_file(&own_path).ok();
    }

    #[test]
    fn unlogged_engine_reports_no_wal() {
        let engine = Engine::new(triangle_store(), OptFlags::all());
        assert!(engine.wal_status().is_none());
        let mut batch = UpdateBatch::new();
        batch.insert(edge(0, 3));
        assert!(engine.update(batch).wal.is_none());
    }

    #[test]
    fn wal_fsync_policy_flows_from_config() {
        let wal_path = temp_path("wal-policy", "wal");
        std::fs::remove_file(&wal_path).ok();
        let config = PlannerConfig::default().with_wal_fsync(FsyncPolicy::Never);
        let mut engine = Engine::with_config(triangle_store(), config);
        engine.open_wal(&wal_path).unwrap();
        assert_eq!(engine.wal_status().unwrap().fsync, FsyncPolicy::Never);
        let mut batch = UpdateBatch::new();
        batch.insert(edge(0, 3));
        let w = engine.update(batch).wal.unwrap();
        assert!(!w.fsynced);
        assert_eq!(w.fsync_us, 0);
        std::fs::remove_file(&wal_path).ok();
    }
}
