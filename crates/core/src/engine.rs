//! The user-facing engine API.

use eh_query::{parse_sparql, ConjunctiveQuery};
use eh_rdf::TripleStore;

use crate::catalog::Catalog;
use crate::error::EngineError;
use crate::exec::execute_plan;
use crate::flags::{OptFlags, PlannerConfig};
use crate::plan::Plan;
use crate::planner::build_plan_with;
use crate::result::QueryResult;

/// A worst-case optimal join engine over a [`TripleStore`].
///
/// The engine owns a trie catalog (its "indexes"); tries are built lazily
/// per (predicate, order, layout) and cached, mirroring how EmptyHeaded
/// loads relations once and reuses them across queries. Timing
/// methodology note: the paper excludes index construction from query
/// time (§IV-A4) — call [`Engine::warm`] before measuring.
pub struct Engine<'s> {
    catalog: Catalog<'s>,
    config: PlannerConfig,
}

impl<'s> Engine<'s> {
    /// An engine with the given optimization flags.
    pub fn new(store: &'s TripleStore, flags: OptFlags) -> Engine<'s> {
        Engine::with_config(store, PlannerConfig::with_flags(flags))
    }

    /// An engine with a full planner configuration (used by the
    /// LogicBlox-style baseline).
    pub fn with_config(store: &'s TripleStore, config: PlannerConfig) -> Engine<'s> {
        Engine { catalog: Catalog::new(store), config }
    }

    /// The underlying store.
    pub fn store(&self) -> &'s TripleStore {
        self.catalog.store()
    }

    /// The planner configuration.
    pub fn config(&self) -> PlannerConfig {
        self.config
    }

    /// The trie catalog — the hook a caching layer needs: its
    /// [`epoch`](Catalog::epoch) versions derived-result caches and
    /// [`invalidate`](Catalog::invalidate) retires them.
    pub fn catalog(&self) -> &Catalog<'s> {
        &self.catalog
    }

    /// Plan a query without running it.
    pub fn plan(&self, q: &ConjunctiveQuery) -> Result<Plan, EngineError> {
        if q.projection().is_empty() {
            return Err(EngineError::EmptyProjection);
        }
        Ok(build_plan_with(q, self.config, Some(self.store())))
    }

    /// Plan and execute a query.
    pub fn run(&self, q: &ConjunctiveQuery) -> Result<QueryResult, EngineError> {
        let plan = self.plan(q)?;
        Ok(self.run_plan(q, &plan))
    }

    /// Execute a previously built plan (on the configured runtime:
    /// sequential by default, morsel-parallel when
    /// [`PlannerConfig::with_threads`] asked for workers).
    pub fn run_plan(&self, q: &ConjunctiveQuery, plan: &Plan) -> QueryResult {
        execute_plan(&self.catalog, q, plan, self.config.flags.layouts, self.config.runtime)
    }

    /// Parse a SPARQL query against this engine's store and run it.
    pub fn run_sparql(&self, text: &str) -> Result<QueryResult, EngineError> {
        let q = parse_sparql(text, self.store())?;
        self.run(&q)
    }

    /// Pre-build the tries a query needs, so a subsequent timed
    /// [`Engine::run`] measures join execution, not index construction —
    /// the paper's timing methodology (§IV-A4) excludes index build time.
    ///
    /// Distinct tries build **concurrently** on the configured runtime's
    /// workers (EmptyHeaded's trie construction is parallel too): the
    /// catalog is shared under `&self`, its lock taken only to publish
    /// each finished trie.
    pub fn warm(&self, q: &ConjunctiveQuery) -> Result<(), EngineError> {
        let plan = self.plan(q)?;
        // One build job per distinct (predicate, column order); duplicate
        // atoms over the same table would otherwise race to build the
        // same trie redundantly.
        let mut jobs: Vec<(u32, bool, usize)> = plan
            .nodes
            .iter()
            .flat_map(|node| node.atoms.iter())
            .map(|ap| (q.atoms()[ap.atom_index].pred, ap.subject_first, ap.atom_index))
            .collect();
        jobs.sort_unstable();
        jobs.dedup_by_key(|&mut (pred, subject_first, _)| (pred, subject_first));
        eh_par::run_tasks(self.config.runtime.num_threads, jobs.len(), |i| {
            let (_, subject_first, atom_index) = jobs[i];
            self.catalog.trie(&q.atoms()[atom_index], subject_first, self.config.flags.layouts);
        });
        Ok(())
    }

    /// Human-readable plan explanation: the GHD, global attribute order,
    /// width and pipelining decision, plus per-atom base cardinalities
    /// and the chosen trie orders — the `EXPLAIN` a downstream user would
    /// expect.
    pub fn explain(&self, q: &ConjunctiveQuery) -> Result<String, EngineError> {
        use std::fmt::Write;
        let plan = self.plan(q)?;
        let mut out = plan.render(q);
        let _ = writeln!(out, "atom access paths:");
        for node in &plan.nodes {
            for ap in &node.atoms {
                let atom = &q.atoms()[ap.atom_index];
                let short = atom.relation.rsplit(['/', '#']).next().unwrap_or(&atom.relation);
                let order = if ap.subject_first { "[s, o]" } else { "[o, s]" };
                let _ = writeln!(
                    out,
                    "  {short}: trie {order}, {} tuples",
                    self.catalog.cardinality(atom)
                );
            }
        }
        Ok(out)
    }

    /// Parse and explain a SPARQL query (see [`Engine::explain`]).
    pub fn explain_sparql(&self, text: &str) -> Result<String, EngineError> {
        let q = parse_sparql(text, self.store())?;
        self.explain(&q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eh_query::QueryBuilder;
    use eh_rdf::{Term, Triple};

    fn edge(s: u32, o: u32) -> Triple {
        Triple::new(Term::iri(format!("n{s}")), Term::iri("edge"), Term::iri(format!("n{o}")))
    }

    /// A small graph with two triangles: (0,1,2) and (1,2,3).
    fn triangle_store() -> TripleStore {
        TripleStore::from_triples(vec![edge(0, 1), edge(1, 2), edge(0, 2), edge(1, 3), edge(2, 3)])
    }

    fn triangle_query(store: &TripleStore) -> ConjunctiveQuery {
        let pred = store.resolve_iri("edge").unwrap();
        let mut qb = QueryBuilder::new();
        let (x, y, z) = (qb.var("x"), qb.var("y"), qb.var("z"));
        qb.atom("edge", pred, x, y).atom("edge", pred, y, z).atom("edge", pred, x, z);
        qb.select(vec![x, y, z]).build().unwrap()
    }

    #[test]
    fn triangle_listing_all_flag_combinations() {
        let store = triangle_store();
        let q = triangle_query(&store);
        for k in 0..=4 {
            let engine = Engine::new(&store, OptFlags::cumulative(k));
            let r = engine.run(&q).unwrap();
            let rows: Vec<Vec<u32>> = r.iter().map(|t| t.to_vec()).collect();
            assert_eq!(rows.len(), 2, "flags {k}: {rows:?}");
        }
        // LogicBlox-style single node agrees.
        let engine = Engine::with_config(&store, PlannerConfig::logicblox_style());
        assert_eq!(engine.run(&q).unwrap().cardinality(), 2);
    }

    #[test]
    fn triangle_results_decode() {
        let store = triangle_store();
        let q = triangle_query(&store);
        let engine = Engine::new(&store, OptFlags::all());
        let r = engine.run(&q).unwrap();
        let decoded: Vec<String> =
            r.decode_row(&store, 0).into_iter().map(|t| t.as_str().to_string()).collect();
        assert_eq!(decoded, vec!["n0", "n1", "n2"]);
    }

    #[test]
    fn sparql_end_to_end() {
        let store = triangle_store();
        let engine = Engine::new(&store, OptFlags::all());
        let r = engine.run_sparql("SELECT ?x ?y WHERE { ?x <edge> ?y . ?y <edge> ?x }").unwrap();
        // No 2-cycles in the triangle store.
        assert_eq!(r.cardinality(), 0);
        let r2 = engine.run_sparql("SELECT ?x WHERE { ?x <edge> <n3> }").unwrap();
        assert_eq!(r2.cardinality(), 2);
    }

    #[test]
    fn missing_constant_is_empty_not_error() {
        let store = triangle_store();
        let engine = Engine::new(&store, OptFlags::all());
        let r = engine.run_sparql("SELECT ?x WHERE { ?x <edge> <nowhere> }").unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn empty_projection_rejected() {
        let store = triangle_store();
        let q = {
            let mut qb = QueryBuilder::new();
            let (x, y) = (qb.var("x"), qb.var("y"));
            let pred = store.resolve_iri("edge").unwrap();
            qb.atom("edge", pred, x, y);
            qb.build().unwrap()
        };
        let engine = Engine::new(&store, OptFlags::all());
        assert_eq!(engine.run(&q).unwrap_err(), EngineError::EmptyProjection);
    }

    #[test]
    fn warm_populates_cache() {
        let store = triangle_store();
        let q = triangle_query(&store);
        let engine = Engine::new(&store, OptFlags::all());
        engine.warm(&q).unwrap();
        let r = engine.run(&q).unwrap();
        assert_eq!(r.cardinality(), 2);
    }

    #[test]
    fn parallel_execution_is_bit_identical() {
        let store = triangle_store();
        let q = triangle_query(&store);
        let reference = Engine::new(&store, OptFlags::all()).run(&q).unwrap();
        for threads in [2, 4] {
            for flags in [OptFlags::all(), OptFlags::none()] {
                let config = PlannerConfig::with_flags(flags)
                    .with_runtime(eh_par::RuntimeConfig::with_threads(threads).with_morsel_size(1));
                let engine = Engine::with_config(&store, config);
                engine.warm(&q).unwrap();
                let r = engine.run(&q).unwrap();
                assert_eq!(r, reference, "threads {threads}, flags {flags:?}");
            }
        }
    }

    #[test]
    fn parallel_warm_builds_each_trie_once() {
        let store = triangle_store();
        let q = triangle_query(&store);
        let engine =
            Engine::with_config(&store, PlannerConfig::with_flags(OptFlags::all()).with_threads(4));
        engine.warm(&q).unwrap();
        // Three self-join atoms over one predicate share at most two trie
        // orders; the jobs were deduplicated before fan-out.
        assert!(engine.catalog.cached_tries() <= 2);
        assert_eq!(engine.run(&q).unwrap().cardinality(), 2);
    }

    #[test]
    fn explain_lists_access_paths() {
        let store = triangle_store();
        let engine = Engine::new(&store, OptFlags::all());
        let text =
            engine.explain_sparql("SELECT ?x ?y WHERE { ?x <edge> ?y . ?y <edge> <n3> }").unwrap();
        assert!(text.contains("global attribute order"), "{text}");
        assert!(text.contains("atom access paths"), "{text}");
        assert!(text.contains("edge: trie"), "{text}");
        assert!(text.contains("5 tuples"), "{text}");
    }

    #[test]
    fn path_query_projection_order_and_dedup() {
        let store = triangle_store();
        let pred = store.resolve_iri("edge").unwrap();
        let mut qb = QueryBuilder::new();
        let (x, y, z) = (qb.var("x"), qb.var("y"), qb.var("z"));
        qb.atom("edge", pred, x, y).atom("edge", pred, y, z);
        // Project z before x, dropping y: forces permutation + dedup.
        let q = qb.select(vec![z, x]).build().unwrap();
        for flags in [OptFlags::all(), OptFlags::none()] {
            let engine = Engine::new(&store, flags);
            let r = engine.run(&q).unwrap();
            let rows: Vec<Vec<u32>> = r.iter().map(|t| t.to_vec()).collect();
            // Paths of length 2: 0->1->2, 0->1->3, 0->2->3, 1->2->3; on
            // (z, x) the pairs (3,0) from the middle two collapse,
            // leaving (2,0), (3,0), (3,1).
            assert_eq!(rows.len(), 3, "{rows:?}");
            assert_eq!(r.columns(), &["z".to_string(), "x".to_string()]);
        }
    }
}
