//! Engine errors.

use std::fmt;

use eh_query::{QueryError, SparqlError};

/// Errors from planning or running a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The SPARQL text failed to parse.
    Sparql(SparqlError),
    /// The query IR failed validation.
    Query(QueryError),
    /// The query projects no variables (boolean queries are unsupported).
    EmptyProjection,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Sparql(e) => write!(f, "{e}"),
            EngineError::Query(e) => write!(f, "{e}"),
            EngineError::EmptyProjection => write!(f, "query projects no variables"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<SparqlError> for EngineError {
    fn from(e: SparqlError) -> Self {
        EngineError::Sparql(e)
    }
}

impl From<QueryError> for EngineError {
    fn from(e: QueryError) -> Self {
        EngineError::Query(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forwards() {
        let e = EngineError::EmptyProjection;
        assert!(e.to_string().contains("projects no variables"));
        let s: EngineError = SparqlError::VariablePredicate.into();
        assert!(s.to_string().contains("unsupported"));
    }
}
