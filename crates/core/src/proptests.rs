//! Property tests: every planner configuration must agree with a
//! brute-force nested-loop oracle on randomly generated stores and
//! conjunctive queries, and optimization toggles must never change
//! results.

use std::collections::BTreeSet;

use proptest::prelude::*;

use eh_query::{ConjunctiveQuery, QueryBuilder};
use eh_rdf::{Term, Triple, TripleStore};

use crate::{Engine, OptFlags, PlannerConfig, RuntimeConfig, SharedStore};

const PREDS: [&str; 3] = ["p0", "p1", "p2"];

/// Random store: a few predicates over a small id universe so joins hit.
fn store_strategy() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    proptest::collection::vec((0u8..3, 0u8..12, 0u8..12), 1..60)
}

fn build_store(spec: &[(u8, u8, u8)]) -> TripleStore {
    TripleStore::from_triples(spec.iter().map(|&(p, s, o)| {
        Triple::new(
            Term::iri(format!("n{s}")),
            Term::iri(PREDS[p as usize]),
            Term::iri(format!("n{o}")),
        )
    }))
}

/// A random query: atoms over up to 4 variables with optional selections.
#[derive(Debug, Clone)]
struct QuerySpec {
    /// (pred, subject slot, object slot); slots 0..4 are variables,
    /// 4..8 are constants `n{slot-4}`.
    atoms: Vec<(u8, u8, u8)>,
    projection: Vec<u8>,
}

fn query_strategy() -> impl Strategy<Value = QuerySpec> {
    (
        proptest::collection::vec((0u8..3, 0u8..8, 0u8..8), 1..5),
        proptest::collection::vec(0u8..4, 1..4),
    )
        .prop_map(|(atoms, projection)| QuerySpec { atoms, projection })
}

/// Build the IR; returns `None` for specs invalid by construction
/// (repeated variable in an atom, unbound projection).
fn build_query(spec: &QuerySpec, store: &TripleStore) -> Option<ConjunctiveQuery> {
    let mut qb = QueryBuilder::new();
    let var_of = |qb: &mut QueryBuilder, slot: u8| {
        if slot < 4 {
            Ok(qb.var(&format!("v{slot}")))
        } else {
            Err(format!("n{}", slot - 4))
        }
    };
    for &(p, s, o) in &spec.atoms {
        let pred_name = PREDS[p as usize];
        let pred = store.resolve_iri(pred_name).unwrap_or(u32::MAX);
        let sv = match var_of(&mut qb, s) {
            Ok(v) => v,
            Err(iri) => {
                let id = store.resolve_iri(&iri);
                qb.selection_var(id)
            }
        };
        let ov = match var_of(&mut qb, o) {
            Ok(v) => v,
            Err(iri) => {
                let id = store.resolve_iri(&iri);
                qb.selection_var(id)
            }
        };
        qb.atom(pred_name, pred, sv, ov);
    }
    let mut proj = Vec::new();
    for &v in &spec.projection {
        proj.push(qb.var(&format!("v{v}")));
    }
    proj.sort_unstable();
    proj.dedup();
    qb.select(proj);
    qb.build().ok()
}

/// Brute-force oracle: enumerate all assignments of query variables to
/// the value universe and keep those satisfied by every atom.
fn oracle(q: &ConjunctiveQuery, store: &TripleStore) -> BTreeSet<Vec<u32>> {
    // Universe: every id in the dictionary (small in these tests).
    let universe: Vec<u32> = (0..store.dict().len() as u32).collect();
    let n = q.num_vars();
    let mut assignment = vec![0u32; n];
    let mut out = BTreeSet::new();
    enumerate(q, store, &universe, 0, &mut assignment, &mut out);
    out
}

fn enumerate(
    q: &ConjunctiveQuery,
    store: &TripleStore,
    universe: &[u32],
    v: usize,
    assignment: &mut Vec<u32>,
    out: &mut BTreeSet<Vec<u32>>,
) {
    if v == q.num_vars() {
        let ok = q.atoms().iter().all(|a| {
            store
                .table_by_name(&a.relation)
                .is_some_and(|t| t.contains(assignment[a.vars[0]], assignment[a.vars[1]]))
        });
        if ok {
            out.insert(q.projection().iter().map(|&p| assignment[p]).collect());
        }
        return;
    }
    // Selections pin their variable.
    match q.selection(v) {
        Some(Some(c)) => {
            assignment[v] = c;
            enumerate(q, store, universe, v + 1, assignment, out);
        }
        Some(None) => {} // missing constant: no assignment satisfies
        None => {
            for &val in universe {
                assignment[v] = val;
                enumerate(q, store, universe, v + 1, assignment, out);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engine_matches_oracle(spec in store_strategy(), qspec in query_strategy()) {
        let store = build_store(&spec);
        let Some(q) = build_query(&qspec, &store) else { return Ok(()); };
        prop_assume!(q.num_vars() <= 5); // keep the oracle cheap
        let expect = oracle(&q, &store);
        let shared = SharedStore::new(store);
        for k in 0..=4 {
            let engine = Engine::new(shared.clone(), OptFlags::cumulative(k));
            let got: BTreeSet<Vec<u32>> =
                engine.run(&q).unwrap().iter().map(|r| r.to_vec()).collect();
            prop_assert_eq!(&got, &expect, "flags cumulative({})", k);
        }
        let lb = Engine::with_config(shared.clone(), PlannerConfig::logicblox_style());
        let got: BTreeSet<Vec<u32>> = lb.run(&q).unwrap().iter().map(|r| r.to_vec()).collect();
        prop_assert_eq!(&got, &expect, "logicblox-style");
    }

    #[test]
    fn flags_never_change_results(spec in store_strategy(), qspec in query_strategy()) {
        let store = build_store(&spec);
        let Some(q) = build_query(&qspec, &store) else { return Ok(()); };
        let shared = SharedStore::new(store);
        let reference: BTreeSet<Vec<u32>> = Engine::new(shared.clone(), OptFlags::all())
            .run(&q)
            .unwrap()
            .iter()
            .map(|r| r.to_vec())
            .collect();
        // All 16 flag combinations agree.
        for bits in 0..16u8 {
            let flags = OptFlags {
                layouts: bits & 1 != 0,
                attr_reorder: bits & 2 != 0,
                ghd_pushdown: bits & 4 != 0,
                pipelining: bits & 8 != 0,
            };
            let got: BTreeSet<Vec<u32>> = Engine::new(shared.clone(), flags)
                .run(&q)
                .unwrap()
                .iter()
                .map(|r| r.to_vec())
                .collect();
            prop_assert_eq!(&got, &reference, "flags {:?}", flags);
        }
    }

    /// Morsel-merge determinism: the parallel runtime must return results
    /// *byte-identical* to sequential execution (same rows, same order,
    /// same columns) for every plan shape, even at morsel size 1 where
    /// every outer-attribute value becomes its own scheduled task.
    #[test]
    fn parallel_execution_is_byte_identical(
        spec in store_strategy(),
        qspec in query_strategy(),
        threads in 2usize..5,
        morsel in 1usize..4,
    ) {
        let store = build_store(&spec);
        let Some(q) = build_query(&qspec, &store) else { return Ok(()); };
        let shared = SharedStore::new(store);
        for flags in [OptFlags::all(), OptFlags::none()] {
            let reference = Engine::new(shared.clone(), flags).run(&q).unwrap();
            let runtime = RuntimeConfig::with_threads(threads).with_morsel_size(morsel);
            let engine = Engine::with_config(
                shared.clone(),
                PlannerConfig::with_flags(flags).with_runtime(runtime),
            );
            engine.warm(&q).unwrap();
            let parallel = engine.run(&q).unwrap();
            prop_assert_eq!(
                &parallel,
                &reference,
                "threads {} morsel {} flags {:?}",
                threads,
                morsel,
                flags
            );
        }
    }
}
