//! The trie catalog: loads vertically partitioned predicate tables as
//! tries in the orders the plan needs, with caching.
//!
//! A trie over one attribute order is "analogous to a single index in a
//! standard database" (paper §III-A); the catalog is therefore the
//! engine's index manager. Binary RDF atoms need at most two orders per
//! predicate — subject-major (`[s, o]`) and object-major (`[o, s]`) — and
//! both sort orders are already materialised in the store's
//! [`PairTable`](eh_rdf::PairTable)s, so trie construction skips sorting.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use eh_query::Atom;
use eh_rdf::TripleStore;
use eh_trie::{LayoutPolicy, Trie, TupleBuffer};

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct TrieKey {
    pred: u32,
    subject_first: bool,
    auto_layout: bool,
}

/// Trie provider over a [`TripleStore`].
pub struct Catalog<'s> {
    store: &'s TripleStore,
    cache: RefCell<HashMap<TrieKey, Rc<Trie>>>,
    empty: Rc<Trie>,
}

impl<'s> Catalog<'s> {
    /// A catalog over `store`.
    pub fn new(store: &'s TripleStore) -> Catalog<'s> {
        Catalog {
            store,
            cache: RefCell::new(HashMap::new()),
            empty: Rc::new(Trie::build(TupleBuffer::new(2), LayoutPolicy::Auto)),
        }
    }

    /// The underlying store.
    pub fn store(&self) -> &'s TripleStore {
        self.store
    }

    /// The trie for `atom`'s predicate table in the given column order.
    /// Predicates absent from the store resolve to a shared empty trie.
    pub fn trie(&self, atom: &Atom, subject_first: bool, auto_layout: bool) -> Rc<Trie> {
        let Some(table) = self.store.table_by_name(&atom.relation) else {
            return Rc::clone(&self.empty);
        };
        let key = TrieKey { pred: table.pred(), subject_first, auto_layout };
        if let Some(t) = self.cache.borrow().get(&key) {
            return Rc::clone(t);
        }
        let pairs = if subject_first { table.so_pairs() } else { table.os_pairs() };
        let policy = if auto_layout { LayoutPolicy::Auto } else { LayoutPolicy::UintOnly };
        let trie = Rc::new(Trie::from_sorted(TupleBuffer::from_pairs(pairs), policy));
        self.cache.borrow_mut().insert(key, Rc::clone(&trie));
        trie
    }

    /// Cardinality of an atom's predicate table (0 when absent).
    pub fn cardinality(&self, atom: &Atom) -> usize {
        self.store.table_by_name(&atom.relation).map_or(0, |t| t.len())
    }

    /// Number of distinct tries currently cached (diagnostics).
    pub fn cached_tries(&self) -> usize {
        self.cache.borrow().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eh_query::QueryBuilder;
    use eh_rdf::{Term, Triple};

    fn store() -> TripleStore {
        TripleStore::from_triples(vec![
            Triple::new(Term::iri("s1"), Term::iri("p"), Term::iri("o1")),
            Triple::new(Term::iri("s1"), Term::iri("p"), Term::iri("o2")),
            Triple::new(Term::iri("s2"), Term::iri("p"), Term::iri("o1")),
        ])
    }

    fn atom_for(store: &TripleStore, rel: &str) -> Atom {
        let mut qb = QueryBuilder::new();
        let (x, y) = (qb.var("x"), qb.var("y"));
        let pred = store.resolve_iri(rel).unwrap_or(u32::MAX);
        qb.atom(rel, pred, x, y);
        qb.select(vec![x]).build().unwrap().atoms()[0].clone()
    }

    #[test]
    fn loads_both_orders() {
        let s = store();
        let c = Catalog::new(&s);
        let a = atom_for(&s, "p");
        let so = c.trie(&a, true, true);
        let os = c.trie(&a, false, true);
        assert_eq!(so.num_tuples(), 3);
        assert_eq!(os.num_tuples(), 3);
        // Subject-major roots on subjects (2 of them), object-major on
        // objects (2 of them).
        assert_eq!(so.root_set().len(), 2);
        assert_eq!(os.root_set().len(), 2);
    }

    #[test]
    fn cache_hits() {
        let s = store();
        let c = Catalog::new(&s);
        let a = atom_for(&s, "p");
        let t1 = c.trie(&a, true, true);
        let t2 = c.trie(&a, true, true);
        assert!(Rc::ptr_eq(&t1, &t2));
        assert_eq!(c.cached_tries(), 1);
        let _ = c.trie(&a, false, true);
        let _ = c.trie(&a, true, false);
        assert_eq!(c.cached_tries(), 3);
    }

    #[test]
    fn missing_predicate_is_empty() {
        let s = store();
        let c = Catalog::new(&s);
        let a = atom_for(&s, "absent");
        assert!(c.trie(&a, true, true).is_empty());
        assert_eq!(c.cardinality(&a), 0);
    }

    #[test]
    fn cardinality() {
        let s = store();
        let c = Catalog::new(&s);
        assert_eq!(c.cardinality(&atom_for(&s, "p")), 3);
    }
}
