//! The trie catalog: loads vertically partitioned predicate tables as
//! tries in the orders the plan needs, with caching.
//!
//! A trie over one attribute order is "analogous to a single index in a
//! standard database" (paper §III-A); the catalog is therefore the
//! engine's index manager. Binary RDF atoms need at most two orders per
//! predicate — subject-major (`[s, o]`) and object-major (`[o, s]`) — and
//! both sort orders are already materialised in the store's
//! [`PairTable`](eh_rdf::PairTable)s, so trie construction skips sorting.
//!
//! The cache is shared-state concurrent: tries live behind `Arc` and the
//! map behind an `RwLock`, so the parallel runtime can both *read* tries
//! from many worker threads during join execution and *build* distinct
//! tries concurrently during [`Engine::warm`](crate::Engine::warm) — all
//! through `&self`. Construction happens outside the lock; when two
//! workers race to build the same trie, the first insert wins and both
//! end up sharing one copy.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use eh_query::Atom;
use eh_rdf::TripleStore;
use eh_trie::{LayoutPolicy, Trie, TupleBuffer};

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct TrieKey {
    pred: u32,
    subject_first: bool,
    auto_layout: bool,
}

/// Trie provider over a [`TripleStore`].
pub struct Catalog<'s> {
    store: &'s TripleStore,
    cache: RwLock<HashMap<TrieKey, Arc<Trie>>>,
    empty: Arc<Trie>,
    /// Monotonic version of the catalog's contents. Bumped by
    /// [`Catalog::invalidate`]; layers that cache *derived* artifacts
    /// (e.g. a serving tier's result cache) key them by this epoch so an
    /// invalidation retires every stale entry at once.
    epoch: AtomicU64,
}

impl<'s> Catalog<'s> {
    /// A catalog over `store`.
    pub fn new(store: &'s TripleStore) -> Catalog<'s> {
        Catalog {
            store,
            cache: RwLock::new(HashMap::new()),
            empty: Arc::new(Trie::build(TupleBuffer::new(2), LayoutPolicy::Auto)),
            epoch: AtomicU64::new(0),
        }
    }

    /// The current catalog epoch (see the field docs).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Drop every cached trie and advance the epoch, forcing downstream
    /// caches keyed by `(query, epoch)` to miss. Tries rebuild lazily on
    /// the next access.
    pub fn invalidate(&self) -> u64 {
        self.cache.write().expect("catalog lock poisoned").clear();
        self.epoch.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// The underlying store.
    pub fn store(&self) -> &'s TripleStore {
        self.store
    }

    /// The trie for `atom`'s predicate table in the given column order.
    /// Predicates absent from the store resolve to a shared empty trie.
    pub fn trie(&self, atom: &Atom, subject_first: bool, auto_layout: bool) -> Arc<Trie> {
        let Some(table) = self.store.table_by_name(&atom.relation) else {
            return Arc::clone(&self.empty);
        };
        let key = TrieKey { pred: table.pred(), subject_first, auto_layout };
        if let Some(t) = self.cache.read().expect("catalog lock poisoned").get(&key) {
            return Arc::clone(t);
        }
        // Build outside the lock so concurrent warm-up builds distinct
        // tries in parallel instead of serialising on the map.
        let pairs = if subject_first { table.so_pairs() } else { table.os_pairs() };
        let policy = if auto_layout { LayoutPolicy::Auto } else { LayoutPolicy::UintOnly };
        let trie = Arc::new(Trie::from_sorted(TupleBuffer::from_pairs(pairs), policy));
        let mut cache = self.cache.write().expect("catalog lock poisoned");
        Arc::clone(cache.entry(key).or_insert(trie))
    }

    /// Cardinality of an atom's predicate table (0 when absent).
    pub fn cardinality(&self, atom: &Atom) -> usize {
        self.store.table_by_name(&atom.relation).map_or(0, |t| t.len())
    }

    /// Number of distinct tries currently cached (diagnostics).
    pub fn cached_tries(&self) -> usize {
        self.cache.read().expect("catalog lock poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eh_query::QueryBuilder;
    use eh_rdf::{Term, Triple};

    fn store() -> TripleStore {
        TripleStore::from_triples(vec![
            Triple::new(Term::iri("s1"), Term::iri("p"), Term::iri("o1")),
            Triple::new(Term::iri("s1"), Term::iri("p"), Term::iri("o2")),
            Triple::new(Term::iri("s2"), Term::iri("p"), Term::iri("o1")),
        ])
    }

    fn atom_for(store: &TripleStore, rel: &str) -> Atom {
        let mut qb = QueryBuilder::new();
        let (x, y) = (qb.var("x"), qb.var("y"));
        let pred = store.resolve_iri(rel).unwrap_or(u32::MAX);
        qb.atom(rel, pred, x, y);
        qb.select(vec![x]).build().unwrap().atoms()[0].clone()
    }

    #[test]
    fn loads_both_orders() {
        let s = store();
        let c = Catalog::new(&s);
        let a = atom_for(&s, "p");
        let so = c.trie(&a, true, true);
        let os = c.trie(&a, false, true);
        assert_eq!(so.num_tuples(), 3);
        assert_eq!(os.num_tuples(), 3);
        // Subject-major roots on subjects (2 of them), object-major on
        // objects (2 of them).
        assert_eq!(so.root_set().len(), 2);
        assert_eq!(os.root_set().len(), 2);
    }

    #[test]
    fn cache_hits() {
        let s = store();
        let c = Catalog::new(&s);
        let a = atom_for(&s, "p");
        let t1 = c.trie(&a, true, true);
        let t2 = c.trie(&a, true, true);
        assert!(Arc::ptr_eq(&t1, &t2));
        assert_eq!(c.cached_tries(), 1);
        let _ = c.trie(&a, false, true);
        let _ = c.trie(&a, true, false);
        assert_eq!(c.cached_tries(), 3);
    }

    #[test]
    fn missing_predicate_is_empty() {
        let s = store();
        let c = Catalog::new(&s);
        let a = atom_for(&s, "absent");
        assert!(c.trie(&a, true, true).is_empty());
        assert_eq!(c.cardinality(&a), 0);
    }

    #[test]
    fn invalidate_clears_tries_and_bumps_epoch() {
        let s = store();
        let c = Catalog::new(&s);
        let a = atom_for(&s, "p");
        assert_eq!(c.epoch(), 0);
        let before = c.trie(&a, true, true);
        assert_eq!(c.cached_tries(), 1);
        assert_eq!(c.invalidate(), 1);
        assert_eq!(c.epoch(), 1);
        assert_eq!(c.cached_tries(), 0);
        // The trie rebuilds on demand, content-identical.
        let after = c.trie(&a, true, true);
        assert!(!Arc::ptr_eq(&before, &after));
        assert_eq!(before.num_tuples(), after.num_tuples());
    }

    #[test]
    fn cardinality() {
        let s = store();
        let c = Catalog::new(&s);
        assert_eq!(c.cardinality(&atom_for(&s, "p")), 3);
    }

    #[test]
    fn concurrent_access_shares_one_trie_per_key() {
        // The warm-path contract: many workers requesting overlapping
        // keys through &self agree on a single cached Arc per key.
        let s = store();
        let c = Catalog::new(&s);
        let a = atom_for(&s, "p");
        let tries = eh_par::run_tasks(4, 16, |i| c.trie(&a, i % 2 == 0, true));
        assert_eq!(c.cached_tries(), 2);
        for (i, t) in tries.iter().enumerate() {
            assert!(Arc::ptr_eq(t, &tries[i % 2]));
        }
    }
}
