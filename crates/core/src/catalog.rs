//! The trie catalog: loads vertically partitioned predicate tables as
//! tries in the orders the plan needs, with caching.
//!
//! A trie over one attribute order is "analogous to a single index in a
//! standard database" (paper §III-A); the catalog is therefore the
//! engine's index manager. Binary RDF atoms need at most two orders per
//! predicate — subject-major (`[s, o]`) and object-major (`[o, s]`) — and
//! both sort orders are already materialised in the store's
//! [`PairTable`](eh_rdf::PairTable)s, so trie construction skips sorting.
//!
//! ## Sharding
//!
//! The store hash-partitions subjects into `P` shards, each owning its
//! own `PairTable`s and staged deltas; the catalog mirrors that layout
//! one level down: every cache key carries the shard, so each shard's
//! trie freezes into its own contiguous arena and a shard-local
//! compaction retires exactly one shard's tries. [`Catalog::relation`]
//! assembles the executor's view: at `P = 1` (or when only one shard
//! holds the predicate) a single operand, byte-identical to the
//! unpartitioned engine; otherwise the per-shard operands plus the merged
//! root domain ([`RelOperands::Sharded`]) that the generic join unions
//! through the multiway driver.
//!
//! ## Ownership and mutation
//!
//! The catalog co-owns its [`SharedStore`]: queries and updates share one
//! store behind a `RwLock`, and the catalog's job is keeping its tries
//! consistent with whatever that store currently holds. After a mutation,
//! [`Catalog::refresh_after_update`] retires exactly the changed
//! (predicate, shard) pairs' tries (untouched shards keep theirs),
//! advances the epoch, and rebuilds the previously cached orders
//! concurrently on the runtime's workers. Layers that cache *derived*
//! artifacts (a serving tier's result cache) key them by
//! [`Catalog::epoch`] so every retired state is unreachable at once.
//!
//! ## Concurrency
//!
//! The cache is shared-state concurrent: tries live behind `Arc` and the
//! map behind an `RwLock`, so the parallel runtime can both *read* tries
//! from many worker threads during join execution and *build* distinct
//! tries concurrently during [`Engine::warm`](crate::Engine::warm) — all
//! through `&self`. Construction happens outside the lock; when two
//! workers race to build the same trie, the first insert wins and both
//! end up sharing one copy. Because construction is outside the lock, a
//! build can race with an invalidation — publication therefore re-checks
//! the epoch under the cache's write lock (the epoch only mutates under
//! that lock) and rebuilds instead of inserting a trie made from retired
//! data.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use eh_par::RuntimeConfig;
use eh_query::Atom;
use eh_rdf::PredDelta;
use eh_trie::{DeltaOverlay, FrozenTrie, LayoutPolicy, TupleBuffer};

use crate::shared::SharedStore;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct TrieKey {
    pred: u32,
    shard: usize,
    subject_first: bool,
    auto_layout: bool,
}

/// Overlay cache key: `(predicate, subject_first, shard)`. Overlays are
/// layout-independent — their sets stay in the uint layout and the
/// kernels intersect mixed layouts anyway — so both layout modes share
/// one entry per (order, shard).
type OverlayKey = (u32, bool, usize);

/// Union-root cache key: `(predicate, subject_first)`. The merged root
/// domain across shards is a plain value set, independent of layout.
type UnionKey = (u32, bool);

/// All cache maps behind one lock: the epoch-recheck publication
/// protocol requires the epoch to mutate only under this lock, and
/// splitting the maps across several locks would force an ordering
/// discipline for no gain (overlay and union-root construction are
/// O(delta) / O(roots), never the bottleneck).
#[derive(Default)]
struct CacheMaps {
    tries: HashMap<TrieKey, Arc<FrozenTrie>>,
    overlays: HashMap<OverlayKey, Arc<DeltaOverlay>>,
    unions: HashMap<UnionKey, Arc<Vec<u32>>>,
}

/// One shard's contribution to a partitioned relation: its frozen trie
/// plus its staged-delta overlay (when that shard has uncompacted
/// novelty).
pub(crate) struct ShardOperand {
    pub trie: Arc<FrozenTrie>,
    pub overlay: Option<Arc<DeltaOverlay>>,
}

/// What [`Catalog::relation`] hands the executor for one access path.
pub(crate) enum RelOperands {
    /// One trie (+ optional overlay): the `P = 1` case, a predicate
    /// resident in a single shard, or an absent predicate (empty trie).
    /// Execution is byte-for-byte the unpartitioned code path.
    Single { trie: Arc<FrozenTrie>, overlay: Option<Arc<DeltaOverlay>> },
    /// Two or more shards hold pairs: the per-shard operands (empty
    /// shards already skipped) plus the merged effective root domain —
    /// the union over shards of each shard's overlay-merged root set.
    /// The generic join iterates/probes `union_root` at the relation's
    /// first level and routes descents to the shards that contain each
    /// value.
    Sharded { ops: Vec<ShardOperand>, union_root: Arc<Vec<u32>> },
}

/// Trie provider over a [`SharedStore`]. Every trie it serves is a
/// [`FrozenTrie`] — one contiguous arena per (predicate, shard, order,
/// layout) — whether it was built from the live store or preloaded from
/// a snapshot ([`Catalog::preload`]). An update *thaws* only the changed
/// (predicate, shard) pairs: their frozen tries are retired and rebuilt
/// from the mutable store through [`Catalog::refresh_after_update`],
/// exactly like any cache miss.
pub struct Catalog {
    store: SharedStore,
    cache: RwLock<CacheMaps>,
    empty: Arc<FrozenTrie>,
    /// Monotonic version of the catalog's contents. Advanced by
    /// [`Catalog::invalidate`] / [`Catalog::refresh_after_update`], and
    /// only ever mutated while the `cache` write lock is held — that is
    /// what makes the publish-time epoch re-check in [`Catalog::obtain`]
    /// race-free.
    epoch: AtomicU64,
    /// The [`SharedStore::version`] this catalog last synchronised with.
    /// Several engines can share one store; only the updating engine's
    /// catalog gets the precise per-predicate refresh, so every other
    /// catalog detects the skew here and retires *all* of its tries (it
    /// cannot know which predicates the foreign update touched). Mutated
    /// only under the `cache` write lock, like `epoch`.
    synced_version: AtomicU64,
}

impl Catalog {
    /// A catalog over `store`.
    pub fn new(store: SharedStore) -> Catalog {
        let synced_version = AtomicU64::new(store.version());
        Catalog {
            store,
            cache: RwLock::new(CacheMaps::default()),
            empty: Arc::new(FrozenTrie::build(TupleBuffer::new(2), LayoutPolicy::Auto)),
            epoch: AtomicU64::new(0),
            synced_version,
        }
    }

    /// The current catalog epoch (see the field docs). Reading the epoch
    /// first synchronises with the store version, so a foreign engine's
    /// update is observed — as a full invalidation — no later than the
    /// next epoch read.
    pub fn epoch(&self) -> u64 {
        self.sync_with_store();
        self.epoch.load(Ordering::Acquire)
    }

    /// Number of subject-hash shards in the underlying store.
    pub fn partitions(&self) -> usize {
        self.store.read().partitions()
    }

    /// Catch up with updates applied through *other* engines over the
    /// same store: when the store version moved past the one this catalog
    /// last synchronised with, drop every trie and advance the epoch.
    /// (The updating engine's own catalog is kept in step by
    /// [`Catalog::refresh_after_update`], which records the version it
    /// covered.)
    fn sync_with_store(&self) {
        if self.synced_version.load(Ordering::Acquire) == self.store.version() {
            return;
        }
        let mut cache = self.cache.write().expect("catalog lock poisoned");
        let version = self.store.version();
        if self.synced_version.load(Ordering::Acquire) == version {
            return;
        }
        cache.tries.clear();
        cache.overlays.clear();
        cache.unions.clear();
        self.epoch.fetch_add(1, Ordering::AcqRel);
        self.synced_version.store(version, Ordering::Release);
    }

    /// Claim store version `version` as covered by this catalog's *own*
    /// in-flight update, before the store write lock is released: the
    /// precise [`Catalog::refresh_after_update`] that follows will retire
    /// exactly the changed (predicate, shard) pairs, so readers racing
    /// into the gap must not treat the version skew as a foreign update
    /// and full-invalidate (which would throw away every untouched
    /// predicate's trie).
    pub(crate) fn claim_version(&self, version: u64) {
        // Under the cache lock purely to keep the invariant that
        // `synced_version` mutates only there.
        let _cache = self.cache.write().expect("catalog lock poisoned");
        self.synced_version.fetch_max(version, Ordering::AcqRel);
    }

    /// Drop every cached trie and advance the epoch, forcing downstream
    /// caches keyed by `(query, epoch)` to miss. Tries rebuild lazily on
    /// the next access.
    pub fn invalidate(&self) -> u64 {
        let mut cache = self.cache.write().expect("catalog lock poisoned");
        cache.tries.clear();
        cache.overlays.clear();
        cache.unions.clear();
        // A full clear also covers any store version we had not yet
        // synchronised with — record that so the next epoch read does not
        // invalidate a second time.
        self.synced_version.fetch_max(self.store.version(), Ordering::AcqRel);
        self.epoch.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// The store handle this catalog indexes.
    pub fn store(&self) -> &SharedStore {
        &self.store
    }

    /// The trie for `atom`'s predicate table in the given column order —
    /// the `P = 1` view. Predicates absent from the store (or with
    /// emptied tables) resolve to a shared empty trie.
    ///
    /// # Panics
    /// Panics on a partitioned catalog: a single trie per predicate is
    /// ill-defined there — use [`Catalog::relation`].
    pub fn trie(&self, atom: &Atom, subject_first: bool, auto_layout: bool) -> Arc<FrozenTrie> {
        assert_eq!(self.partitions(), 1, "partitioned catalog: use relation()");
        let Some(pred) = self.store.read().resolve_iri(&atom.relation) else {
            return Arc::clone(&self.empty);
        };
        let key = TrieKey { pred, shard: 0, subject_first, auto_layout };
        self.obtain(key, &|| {})
    }

    /// Test hook: like [`Catalog::trie`], but runs `window` between
    /// building a trie and publishing it — the exact window in which a
    /// concurrent invalidation used to be able to slip a stale trie into
    /// a freshly cleared cache. Kept public (hidden) so the regression
    /// test can drive the interleaving deterministically.
    #[doc(hidden)]
    pub fn trie_with_publish_window(
        &self,
        atom: &Atom,
        subject_first: bool,
        auto_layout: bool,
        window: &dyn Fn(),
    ) -> Arc<FrozenTrie> {
        let Some(pred) = self.store.read().resolve_iri(&atom.relation) else {
            return Arc::clone(&self.empty);
        };
        self.obtain(TrieKey { pred, shard: 0, subject_first, auto_layout }, window)
    }

    /// Build (or fetch) one shard's trie for `atom` — the warm path's
    /// per-shard unit of work ([`Engine::warm`](crate::Engine::warm) fans
    /// (predicate, order, shard) jobs over the runtime's workers).
    pub(crate) fn warm_shard(
        &self,
        atom: &Atom,
        subject_first: bool,
        auto_layout: bool,
        shard: usize,
    ) {
        if let Some(pred) = self.store.read().resolve_iri(&atom.relation) {
            self.obtain(TrieKey { pred, shard, subject_first, auto_layout }, &|| {});
        }
    }

    /// Cached-or-built trie for `key`, with race-safe publication:
    ///
    /// 1. fast path — return a cached trie;
    /// 2. record the epoch, then build from the store *outside* any
    ///    catalog lock (concurrent warm-up builds distinct tries in
    ///    parallel instead of serialising on the map);
    /// 3. publish under the cache write lock **only if the epoch is
    ///    unchanged** — an invalidation between (2) and (3) means the
    ///    build may have read retired data, so the loop rebuilds.
    ///
    /// Without step 3's re-check, a build racing an invalidation could
    /// insert a pre-invalidation trie into the cleared cache and serve it
    /// under the new epoch indefinitely.
    fn obtain(&self, key: TrieKey, window: &dyn Fn()) -> Arc<FrozenTrie> {
        // The hook models a single racing invalidation, injected into the
        // first build's publish window; it must not re-fire on the retry
        // or the retry can never settle.
        let mut window = Some(window);
        loop {
            self.sync_with_store();
            if let Some(t) = self.cache.read().expect("catalog lock poisoned").tries.get(&key) {
                return Arc::clone(t);
            }
            let epoch = self.epoch.load(Ordering::Acquire);
            let Some(trie) = self.build(key) else {
                return Arc::clone(&self.empty);
            };
            if let Some(w) = window.take() {
                w();
            }
            let mut cache = self.cache.write().expect("catalog lock poisoned");
            // Raw load, NOT self.epoch(): epoch() runs sync_with_store,
            // which may re-acquire the cache write lock held right here —
            // std's RwLock is non-reentrant, so that would self-deadlock.
            // A version skew at this point is fine to publish through: the
            // next sync (no later than the next epoch read) retires it.
            if self.epoch.load(Ordering::Acquire) == epoch {
                return Arc::clone(cache.tries.entry(key).or_insert(trie));
            }
            // Epoch moved while building: the data this trie was built
            // from may be gone. Drop it and start over.
        }
    }

    /// The staged-delta overlay for `(pred, subject_first, shard)`, or
    /// `None` when that shard has no uncompacted delta for the predicate.
    /// Cached with the same race-safe epoch-recheck publication as
    /// [`Catalog::obtain`]; the delta's presence is re-read from the
    /// store on every miss (no negative caching — a predicate without
    /// deltas costs one map probe and one store read).
    fn overlay(&self, pred: u32, subject_first: bool, shard: usize) -> Option<Arc<DeltaOverlay>> {
        let key: OverlayKey = (pred, subject_first, shard);
        loop {
            self.sync_with_store();
            if let Some(ov) = self.cache.read().expect("catalog lock poisoned").overlays.get(&key) {
                return Some(Arc::clone(ov));
            }
            let epoch = self.epoch.load(Ordering::Acquire);
            let built = {
                let store = self.store.read();
                if shard >= store.partitions() {
                    return None;
                }
                Arc::new(build_overlay(store.shard_delta(shard, pred)?, subject_first))
            };
            let mut cache = self.cache.write().expect("catalog lock poisoned");
            // Same raw load as obtain(): epoch() would re-enter the lock.
            if self.epoch.load(Ordering::Acquire) == epoch {
                return Some(Arc::clone(cache.overlays.entry(key).or_insert(built)));
            }
        }
    }

    /// The merged effective root domain for a partitioned relation: the
    /// union over `ops` of each shard's overlay-merged root set, sorted
    /// unique. Cached per (predicate, order) under the same epoch-recheck
    /// publication — retired whenever any shard of the predicate changes
    /// (staged or compacted), since either moves some shard's effective
    /// root.
    fn union_root(&self, pred: u32, subject_first: bool, ops: &[ShardOperand]) -> Arc<Vec<u32>> {
        let key: UnionKey = (pred, subject_first);
        loop {
            self.sync_with_store();
            if let Some(u) = self.cache.read().expect("catalog lock poisoned").unions.get(&key) {
                return Arc::clone(u);
            }
            let epoch = self.epoch.load(Ordering::Acquire);
            let mut root: Vec<u32> = Vec::new();
            for op in ops {
                match &op.overlay {
                    Some(ov) => root.extend_from_slice(ov.root(&op.trie)),
                    None => root.extend(op.trie.root_set().iter()),
                }
            }
            // Subject-major roots are disjoint across shards (subjects
            // hash to exactly one shard); object-major roots overlap —
            // sort + dedup restores the P = 1 root set either way.
            root.sort_unstable();
            root.dedup();
            let built = Arc::new(root);
            let mut cache = self.cache.write().expect("catalog lock poisoned");
            if self.epoch.load(Ordering::Acquire) == epoch {
                return Arc::clone(cache.unions.entry(key).or_insert(built));
            }
        }
    }

    /// One shard's full operand pair for an access path: that shard's
    /// base trie plus its staged-delta overlay. This is what the
    /// shard-local execution path consumes — at most this shard's slice
    /// of the predicate, never a cross-shard view.
    pub(crate) fn shard_relation(
        &self,
        atom: &Atom,
        subject_first: bool,
        auto_layout: bool,
        shard: usize,
    ) -> (Arc<FrozenTrie>, Option<Arc<DeltaOverlay>>) {
        let Some(pred) = self.store.read().resolve_iri(&atom.relation) else {
            return (Arc::clone(&self.empty), None);
        };
        let trie = self.obtain(TrieKey { pred, shard, subject_first, auto_layout }, &|| {});
        let overlay = self.overlay(pred, subject_first, shard).filter(|ov| !ov.is_empty());
        (trie, overlay)
    }

    /// The full operand set for one access path — what the executor
    /// consumes. Overlays ride into the join as extra
    /// [`SetRef`](eh_setops::SetRef) operands, never folded into an
    /// arena; at `P > 1` the per-shard operands ride in the same way,
    /// unioned through the multiway driver (see [`RelOperands`]).
    pub(crate) fn relation(
        &self,
        atom: &Atom,
        subject_first: bool,
        auto_layout: bool,
    ) -> RelOperands {
        let (pred, partitions) = {
            let store = self.store.read();
            (store.resolve_iri(&atom.relation), store.partitions())
        };
        let Some(pred) = pred else {
            return RelOperands::Single { trie: Arc::clone(&self.empty), overlay: None };
        };
        if partitions == 1 {
            let trie = self.obtain(TrieKey { pred, shard: 0, subject_first, auto_layout }, &|| {});
            let overlay = self.overlay(pred, subject_first, 0).filter(|ov| !ov.is_empty());
            return RelOperands::Single { trie, overlay };
        }
        // Skip shards that hold neither base pairs nor staged novelty:
        // they contribute nothing to any set view, and dropping them here
        // is what collapses a one-shard-resident predicate back onto the
        // exact single-operand code path.
        let mut ops: Vec<ShardOperand> = Vec::new();
        for shard in 0..partitions {
            let trie = self.obtain(TrieKey { pred, shard, subject_first, auto_layout }, &|| {});
            let overlay = self.overlay(pred, subject_first, shard).filter(|ov| !ov.is_empty());
            if trie.num_tuples() == 0 && overlay.is_none() {
                continue;
            }
            ops.push(ShardOperand { trie, overlay });
        }
        match ops.len() {
            0 => RelOperands::Single { trie: Arc::clone(&self.empty), overlay: None },
            1 => {
                let op = ops.pop().expect("checked length");
                RelOperands::Single { trie: op.trie, overlay: op.overlay }
            }
            _ => {
                let union_root = self.union_root(pred, subject_first, &ops);
                RelOperands::Sharded { ops, union_root }
            }
        }
    }

    /// Build a trie for `key` from the current store contents, or `None`
    /// when the predicate's table is absent or empty in that shard.
    fn build(&self, key: TrieKey) -> Option<Arc<FrozenTrie>> {
        let store = self.store.read();
        if key.shard >= store.partitions() {
            // A racing repartition shrank the shard count; the version
            // bump will retire this key's world momentarily.
            return None;
        }
        let table = store.shard_table(key.shard, key.pred)?;
        let pairs = if key.subject_first { table.so_pairs() } else { table.os_pairs() };
        if pairs.is_empty() {
            return None;
        }
        let policy = if key.auto_layout { LayoutPolicy::Auto } else { LayoutPolicy::UintOnly };
        Some(Arc::new(FrozenTrie::from_sorted(TupleBuffer::from_pairs(pairs), policy)))
    }

    /// Seed the cache with pre-built frozen tries (auto-layout orders) —
    /// the snapshot cold-start path: a loaded engine starts *warm*, no
    /// trie is rebuilt until an update thaws its (predicate, shard).
    /// Entries are inserted as given and trusted to match the store's
    /// current shard tables (the snapshot reader validates exactly that
    /// before handing them over). Intended for startup; entries are
    /// published under the current epoch like any built trie.
    pub fn preload(&self, entries: impl IntoIterator<Item = (u32, bool, usize, Arc<FrozenTrie>)>) {
        let mut cache = self.cache.write().expect("catalog lock poisoned");
        for (pred, subject_first, shard, trie) in entries {
            cache.tries.insert(TrieKey { pred, shard, subject_first, auto_layout: true }, trie);
        }
    }

    /// The store's base tables changed under `preds` (every shard — the
    /// eager add/remove path rebuilds all shards of a changed predicate)
    /// at store version `version`: retire those predicates' cached tries,
    /// advance the epoch, and eagerly rebuild the retired ("hot") orders
    /// concurrently on `runtime`'s workers so the next query doesn't pay
    /// the build. Untouched predicates keep their tries untouched.
    pub fn refresh_preds(
        &self,
        preds: &[u32],
        version: u64,
        runtime: RuntimeConfig,
    ) -> (u64, usize) {
        let partitions = self.partitions();
        let compacted: Vec<(u32, usize)> =
            preds.iter().flat_map(|&p| (0..partitions).map(move |s| (p, s))).collect();
        self.refresh_after_update(&[], &compacted, version, runtime)
    }

    /// The overlay-aware refresh behind [`Engine::update`](crate::Engine::update):
    ///
    /// * `staged` predicates gained or changed a delta but kept their base
    ///   tables — their base tries **survive** (that is the whole point of
    ///   the overlay: O(delta) apply cost), only their cached overlays
    ///   (every shard's — overlay rebuilds are O(delta), precision buys
    ///   nothing) and union roots are retired, rebuilt lazily from the
    ///   store's new deltas;
    /// * `compacted` (predicate, shard) pairs had that shard's delta
    ///   folded into a fresh base table — exactly that shard's base tries
    ///   retire and the previously hot orders rebuild eagerly on
    ///   `runtime`'s workers, plus the shard's cached overlay drops (the
    ///   delta is gone). Other shards of the same predicate keep their
    ///   tries — the shard-local compaction contract.
    ///
    /// One epoch bump covers the whole batch. Returns the new epoch and
    /// the number of base tries rebuilt.
    pub fn refresh_after_update(
        &self,
        staged: &[u32],
        compacted: &[(u32, usize)],
        version: u64,
        runtime: RuntimeConfig,
    ) -> (u64, usize) {
        let (epoch, stale) = {
            let mut cache = self.cache.write().expect("catalog lock poisoned");
            let stale: Vec<TrieKey> = cache
                .tries
                .keys()
                .filter(|k| compacted.contains(&(k.pred, k.shard)))
                .copied()
                .collect();
            for k in &stale {
                cache.tries.remove(k);
            }
            cache
                .overlays
                .retain(|&(p, _, s), _| !staged.contains(&p) && !compacted.contains(&(p, s)));
            // Either kind of change moves some shard's effective root, so
            // the merged domain is stale for every touched predicate.
            cache.unions.retain(|&(p, _), _| {
                !staged.contains(&p) && !compacted.iter().any(|&(cp, _)| cp == p)
            });
            // fetch_max, not store: if an even newer foreign version
            // exists, the next sync must still do its full invalidation.
            self.synced_version.fetch_max(version, Ordering::AcqRel);
            (self.epoch.fetch_add(1, Ordering::AcqRel) + 1, stale)
        };
        eh_par::run_tasks(runtime.num_threads, stale.len(), |i| {
            self.obtain(stale[i], &|| {});
        });
        (epoch, stale.len())
    }

    /// Logical cardinality of an atom's predicate (0 when absent): the
    /// base tables adjusted by the staged deltas across all shards, so
    /// the planner's cost-model sees the same relation the executor
    /// serves — identical at every partition count.
    pub fn cardinality(&self, atom: &Atom) -> usize {
        let store = self.store.read();
        let Some(pred) = store.resolve_iri(&atom.relation) else {
            return 0;
        };
        store.pred_logical_len(pred)
    }

    /// Number of distinct tries currently cached (diagnostics).
    pub fn cached_tries(&self) -> usize {
        self.cache.read().expect("catalog lock poisoned").tries.len()
    }

    /// Number of distinct delta overlays currently cached (diagnostics).
    pub fn cached_overlays(&self) -> usize {
        self.cache.read().expect("catalog lock poisoned").overlays.len()
    }

    /// Cached arena bytes per shard (index = shard), for the serving
    /// tier's per-shard gauges. Shards with nothing cached report 0.
    pub fn arena_bytes_by_shard(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.partitions()];
        let cache = self.cache.read().expect("catalog lock poisoned");
        for (k, t) in &cache.tries {
            if let Some(slot) = out.get_mut(k.shard) {
                *slot += t.arena_bytes() as u64;
            }
        }
        out
    }
}

/// Materialise one order's [`DeltaOverlay`] from the store's staged
/// delta. Deltas are kept subject-major in the store; the object-major
/// order permutes and re-sorts (deltas are small by the compaction
/// threshold, so this stays O(delta log delta)).
fn build_overlay(delta: &PredDelta, subject_first: bool) -> DeltaOverlay {
    if subject_first {
        DeltaOverlay::from_pairs(delta.ins_pairs(), delta.del_pairs())
    } else {
        let permute = |pairs: &[(u32, u32)]| {
            let mut v: Vec<(u32, u32)> = pairs.iter().map(|&(s, o)| (o, s)).collect();
            v.sort_unstable();
            v
        };
        DeltaOverlay::from_pairs(&permute(delta.ins_pairs()), &permute(delta.del_pairs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eh_query::QueryBuilder;
    use eh_rdf::{Term, Triple, TripleStore};

    fn triple(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    fn store() -> SharedStore {
        SharedStore::from_triples(vec![
            triple("s1", "p", "o1"),
            triple("s1", "p", "o2"),
            triple("s2", "p", "o1"),
        ])
    }

    fn atom_for(store: &TripleStore, rel: &str) -> Atom {
        let mut qb = QueryBuilder::new();
        let (x, y) = (qb.var("x"), qb.var("y"));
        let pred = store.resolve_iri(rel).unwrap_or(u32::MAX);
        qb.atom(rel, pred, x, y);
        qb.select(vec![x]).build().unwrap().atoms()[0].clone()
    }

    /// Unwrap the single-operand case of [`Catalog::relation`].
    fn single_rel(
        c: &Catalog,
        a: &Atom,
        subject_first: bool,
    ) -> (Arc<FrozenTrie>, Option<Arc<DeltaOverlay>>) {
        match c.relation(a, subject_first, true) {
            RelOperands::Single { trie, overlay } => (trie, overlay),
            RelOperands::Sharded { .. } => panic!("expected a single operand"),
        }
    }

    /// Expand predicate keys to (pred, shard) pairs across all shards.
    fn all_shards(c: &Catalog, preds: &[u32]) -> Vec<(u32, usize)> {
        let p = c.partitions();
        preds.iter().flat_map(|&pred| (0..p).map(move |s| (pred, s))).collect()
    }

    #[test]
    fn loads_both_orders() {
        let s = store();
        let c = Catalog::new(s.clone());
        let a = atom_for(&s.read(), "p");
        let so = c.trie(&a, true, true);
        let os = c.trie(&a, false, true);
        assert_eq!(so.num_tuples(), 3);
        assert_eq!(os.num_tuples(), 3);
        // Subject-major roots on subjects (2 of them), object-major on
        // objects (2 of them).
        assert_eq!(so.root_set().len(), 2);
        assert_eq!(os.root_set().len(), 2);
    }

    #[test]
    fn cache_hits() {
        let s = store();
        let c = Catalog::new(s.clone());
        let a = atom_for(&s.read(), "p");
        let t1 = c.trie(&a, true, true);
        let t2 = c.trie(&a, true, true);
        assert!(Arc::ptr_eq(&t1, &t2));
        assert_eq!(c.cached_tries(), 1);
        let _ = c.trie(&a, false, true);
        let _ = c.trie(&a, true, false);
        assert_eq!(c.cached_tries(), 3);
    }

    #[test]
    fn missing_predicate_is_empty() {
        let s = store();
        let c = Catalog::new(s.clone());
        let a = atom_for(&s.read(), "absent");
        assert!(c.trie(&a, true, true).is_empty());
        assert_eq!(c.cardinality(&a), 0);
    }

    #[test]
    fn invalidate_clears_tries_and_bumps_epoch() {
        let s = store();
        let c = Catalog::new(s.clone());
        let a = atom_for(&s.read(), "p");
        assert_eq!(c.epoch(), 0);
        let before = c.trie(&a, true, true);
        assert_eq!(c.cached_tries(), 1);
        assert_eq!(c.invalidate(), 1);
        assert_eq!(c.epoch(), 1);
        assert_eq!(c.cached_tries(), 0);
        // The trie rebuilds on demand, content-identical.
        let after = c.trie(&a, true, true);
        assert!(!Arc::ptr_eq(&before, &after));
        assert_eq!(before.num_tuples(), after.num_tuples());
    }

    #[test]
    fn cardinality() {
        let s = store();
        let c = Catalog::new(s.clone());
        assert_eq!(c.cardinality(&atom_for(&s.read(), "p")), 3);
    }

    #[test]
    fn concurrent_access_shares_one_trie_per_key() {
        // The warm-path contract: many workers requesting overlapping
        // keys through &self agree on a single cached Arc per key.
        let s = store();
        let c = Catalog::new(s.clone());
        let a = atom_for(&s.read(), "p");
        let tries = eh_par::run_tasks(4, 16, |i| c.trie(&a, i % 2 == 0, true));
        assert_eq!(c.cached_tries(), 2);
        for (i, t) in tries.iter().enumerate() {
            assert!(Arc::ptr_eq(t, &tries[i % 2]));
        }
    }

    #[test]
    fn refresh_preds_keeps_untouched_predicates() {
        let s = SharedStore::from_triples(vec![triple("a", "p", "b"), triple("a", "q", "b")]);
        let c = Catalog::new(s.clone());
        let (ap, aq) = { (atom_for(&s.read(), "p"), atom_for(&s.read(), "q")) };
        let p_before = c.trie(&ap, true, true);
        let q_before = c.trie(&aq, true, true);
        let pred_p = s.read().resolve_iri("p").unwrap();

        s.write().add_triples(vec![triple("c", "p", "d")]);
        let v = s.bump_version();
        let (epoch, rebuilt) = c.refresh_preds(&[pred_p], v, RuntimeConfig::serial());
        assert_eq!(epoch, 1);
        assert_eq!(rebuilt, 1);
        // p was rebuilt eagerly (still cached) with the new contents; q's
        // trie is the very same Arc as before.
        assert_eq!(c.cached_tries(), 2);
        let p_after = c.trie(&ap, true, true);
        assert!(!Arc::ptr_eq(&p_before, &p_after));
        assert_eq!(p_after.num_tuples(), 2);
        assert!(Arc::ptr_eq(&q_before, &c.trie(&aq, true, true)));
    }

    #[test]
    fn emptied_table_resolves_to_empty_trie() {
        let s = SharedStore::from_triples(vec![triple("a", "p", "b")]);
        let c = Catalog::new(s.clone());
        let a = atom_for(&s.read(), "p");
        assert_eq!(c.trie(&a, true, true).num_tuples(), 1);
        let pred = s.read().resolve_iri("p").unwrap();
        s.write().remove_triples(vec![triple("a", "p", "b")]);
        let v = s.bump_version();
        c.refresh_preds(&[pred], v, RuntimeConfig::serial());
        assert!(c.trie(&a, true, true).is_empty());
        assert_eq!(c.cardinality(&a), 0);
    }

    /// The headline regression: a trie built from pre-invalidation data
    /// must not be published into the cache after the invalidation
    /// cleared it — with a mutable store that stale trie would be served
    /// under the new epoch indefinitely. The publish-window hook drives
    /// the exact interleaving; reverting the epoch re-check in
    /// [`Catalog::obtain`] makes this fail.
    #[test]
    fn stale_trie_is_not_published_across_invalidation() {
        let s = SharedStore::from_triples(vec![triple("a", "p", "b")]);
        let c = Catalog::new(s.clone());
        let a = atom_for(&s.read(), "p");
        let pred = s.read().resolve_iri("p").unwrap();
        // Build p's trie; in the window between build and publish, the
        // store gains a triple and the catalog invalidates p.
        let served = c.trie_with_publish_window(&a, true, true, &|| {
            s.write().add_triples(vec![triple("c", "p", "d")]);
            let v = s.bump_version();
            c.refresh_preds(&[pred], v, RuntimeConfig::serial());
        });
        // The racing builder must have retried against the new contents…
        assert_eq!(served.num_tuples(), 2, "stale trie escaped the publish window");
        // …and whatever the cache now serves must also be current.
        assert_eq!(c.trie(&a, true, true).num_tuples(), 2, "stale trie cached across invalidation");
    }

    /// The LSM contract: a staged update serves through an overlay
    /// while the base trie Arc survives untouched; compaction then
    /// retires both base trie and overlay.
    #[test]
    fn staged_deltas_serve_overlays_and_keep_base_tries() {
        let s = SharedStore::from_triples(vec![triple("a", "p", "b")]);
        let c = Catalog::new(s.clone());
        let a = atom_for(&s.read(), "p");
        let base = c.trie(&a, true, true);
        let pred = s.read().resolve_iri("p").unwrap();

        s.write().stage_add_triples(vec![triple("c", "p", "d")]);
        let v = s.bump_version();
        c.claim_version(v);
        let (epoch, rebuilt) = c.refresh_after_update(&[pred], &[], v, RuntimeConfig::serial());
        assert_eq!((epoch, rebuilt), (1, 0), "staged updates must not rebuild base tries");

        let (trie, ov) = single_rel(&c, &a, true);
        assert!(Arc::ptr_eq(&base, &trie), "base trie retired by a staged update");
        let ov = ov.expect("delta resident");
        assert_eq!((ov.inserted(), ov.deleted()), (1, 0));
        assert_eq!(c.cardinality(&a), 2);
        assert_eq!(c.cached_overlays(), 1);
        // Object-major overlay is served (and cached) independently.
        let (_, ov_os) = single_rel(&c, &a, false);
        assert_eq!(ov_os.expect("os overlay").inserted(), 1);
        assert_eq!(c.cached_overlays(), 2);

        // Compaction folds the delta: base tries rebuild, overlays drop.
        let compacted = s.write().compact_all();
        let v = s.bump_version();
        c.claim_version(v);
        let pairs = all_shards(&c, &compacted);
        let (_, rebuilt) = c.refresh_after_update(&[], &pairs, v, RuntimeConfig::serial());
        assert_eq!(rebuilt, 2, "both cached orders of p rebuild on compaction");
        let (trie, ov) = single_rel(&c, &a, true);
        assert!(!Arc::ptr_eq(&base, &trie));
        assert_eq!(trie.num_tuples(), 2);
        assert!(ov.is_none());
        assert_eq!(c.cached_overlays(), 0);
        assert_eq!(c.cardinality(&a), 2);
    }

    /// Same race against a full invalidate(): the cleared cache must not
    /// be repopulated with a pre-clear build.
    #[test]
    fn stale_trie_is_not_published_across_full_invalidate() {
        let s = SharedStore::from_triples(vec![triple("a", "p", "b")]);
        let c = Catalog::new(s.clone());
        let a = atom_for(&s.read(), "p");
        let served = c.trie_with_publish_window(&a, true, true, &|| {
            s.write().add_triples(vec![triple("c", "p", "d")]);
            c.invalidate();
        });
        assert_eq!(served.num_tuples(), 2);
        assert_eq!(c.trie(&a, true, true).num_tuples(), 2);
    }

    /// Enough distinct subjects to populate every shard at P = 4.
    fn wide_store(partitions: usize) -> SharedStore {
        let triples: Vec<Triple> =
            (0..32).map(|i| triple(&format!("s{i}"), "p", &format!("o{}", i % 3))).collect();
        SharedStore::from(TripleStore::from_triples_partitioned(triples, partitions))
    }

    /// The tentpole contract: a partitioned catalog serves per-shard
    /// operands whose union root reproduces the P = 1 root set exactly,
    /// in both trie orders.
    #[test]
    fn partitioned_relation_serves_sharded_operands() {
        let s1 = wide_store(1);
        let s4 = wide_store(4);
        let c1 = Catalog::new(s1.clone());
        let c4 = Catalog::new(s4.clone());
        let a = atom_for(&s4.read(), "p");
        assert_eq!(c4.partitions(), 4);
        for subject_first in [true, false] {
            let reference = c1.trie(&a, subject_first, true);
            let RelOperands::Sharded { ops, union_root } = c4.relation(&a, subject_first, true)
            else {
                panic!("32 spread subjects must occupy several shards");
            };
            assert!(ops.len() >= 2);
            let total: usize = ops.iter().map(|op| op.trie.num_tuples()).sum();
            assert_eq!(total, reference.num_tuples(), "shards partition the pairs");
            let merged: Vec<u32> = union_root.to_vec();
            let expect: Vec<u32> = reference.root_set().iter().collect();
            assert_eq!(merged, expect, "union root reproduces the P=1 root set");
            // The union root is cached: a second fetch shares the Arc.
            let RelOperands::Sharded { union_root: again, .. } =
                c4.relation(&a, subject_first, true)
            else {
                panic!("still sharded");
            };
            assert!(Arc::ptr_eq(&union_root, &again));
        }
    }

    /// Shard-local compaction precision: folding one shard's delta must
    /// retire exactly that shard's tries — every other shard keeps its
    /// Arcs.
    #[test]
    fn shard_local_refresh_retires_only_that_shard() {
        let s = wide_store(4);
        let c = Catalog::new(s.clone());
        let a = atom_for(&s.read(), "p");
        let pred = s.read().resolve_iri("p").unwrap();
        // Warm every shard's subject-major trie.
        let before: Vec<Arc<FrozenTrie>> =
            (0..4).map(|shard| c.shard_relation(&a, true, true, shard).0).collect();

        // Stage a pair into whichever shard owns the (already encoded)
        // subject, then fold exactly that shard.
        let target = {
            let store = s.read();
            store.partitioner().shard_of(store.resolve_iri("s0").unwrap())
        };
        s.write().stage_add_triples(vec![triple("s0", "p", "o9")]);
        let v = s.bump_version();
        c.claim_version(v);
        c.refresh_after_update(&[pred], &[], v, RuntimeConfig::serial());
        assert!(s.write().compact_pred_in(target, pred));
        let v = s.bump_version();
        c.claim_version(v);
        let (_, rebuilt) =
            c.refresh_after_update(&[], &[(pred, target)], v, RuntimeConfig::serial());
        assert_eq!(rebuilt, 1, "only the folded shard's cached order rebuilds");

        for (shard, old) in before.iter().enumerate() {
            let (now, ov) = c.shard_relation(&a, true, true, shard);
            assert!(ov.is_none(), "delta folded");
            if shard == target {
                assert!(!Arc::ptr_eq(old, &now), "folded shard must retire its trie");
                assert_eq!(now.num_tuples(), old.num_tuples() + 1);
            } else {
                assert!(Arc::ptr_eq(old, &now), "untouched shard {shard} lost its trie");
            }
        }
    }

    /// Staged novelty at P > 1 rides per-shard overlays: only the shard
    /// owning the staged subject carries one, and a predicate resident in
    /// a single shard collapses back to a single operand.
    #[test]
    fn partitioned_overlays_route_by_subject_shard() {
        let s = wide_store(4);
        let c = Catalog::new(s.clone());
        let a = atom_for(&s.read(), "p");
        let pred = s.read().resolve_iri("p").unwrap();
        let target = {
            let store = s.read();
            store.partitioner().shard_of(store.resolve_iri("s1").unwrap())
        };
        s.write().stage_add_triples(vec![triple("s1", "p", "o77")]);
        let v = s.bump_version();
        c.claim_version(v);
        c.refresh_after_update(&[pred], &[], v, RuntimeConfig::serial());

        for shard in 0..4 {
            let (_, ov) = c.shard_relation(&a, true, true, shard);
            assert_eq!(ov.is_some(), shard == target, "overlay misrouted for shard {shard}");
        }

        // A predicate whose pairs all live in one shard serves a single
        // operand even on a partitioned store.
        s.write().add_triples(vec![triple("lonely", "q", "z")]);
        let v = s.bump_version();
        c.claim_version(v);
        let q_pred = s.read().resolve_iri("q").unwrap();
        c.refresh_preds(&[q_pred], v, RuntimeConfig::serial());
        let aq = atom_for(&s.read(), "q");
        match c.relation(&aq, true, true) {
            RelOperands::Single { trie, .. } => assert_eq!(trie.num_tuples(), 1),
            RelOperands::Sharded { .. } => panic!("one-shard predicate must serve Single"),
        }
    }
}
