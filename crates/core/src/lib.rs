//! # emptyheaded
//!
//! The paper's primary contribution: a worst-case optimal join engine for
//! RDF workloads in the style of EmptyHeaded (Aberger, Tu, Olukotun, Ré —
//! ICDE 2016), with the three classic query optimizations the paper maps
//! onto worst-case optimal processing:
//!
//! 1. **Optimized index layouts** (§III-A): trie sets choose between
//!    sorted uint arrays and bitsets per the 1/256-density optimizer.
//! 2. **Pushing down selections** (§III-B): *within* a GHD node by placing
//!    selection attributes first in the attribute order; *across* nodes by
//!    choosing GHDs that maximise selection depth.
//! 3. **Pipelining** (§III-C): the root node streams into the final result
//!    when Definition 2 holds, skipping intermediate materialisation.
//!
//! Each optimization has an independent toggle in [`OptFlags`] so the
//! benchmark harness can regenerate the paper's Table I ablation; the
//! LogicBlox-style baseline reuses this engine with
//! [`PlannerConfig::force_single_node`] and all optimizations off.
//!
//! Execution follows the paper §II-C: a GHD is chosen, a *global attribute
//! order* is derived by BFS over it, every relation is loaded as a trie
//! consistent with that order, the generic worst-case optimal join
//! (Algorithm 1) runs per node bottom-up with children's intermediates
//! participating as extra relations, and a final pass materialises the
//! projection.
//!
//! Like the original EmptyHeaded (whose reported numbers are multicore),
//! execution parallelizes across the outermost iterated attribute:
//! configure workers with [`PlannerConfig::with_threads`] /
//! [`RuntimeConfig`] and the engine partitions each join's first
//! unselected attribute into morsels, runs the remaining levels on worker
//! threads, builds indexes concurrently in [`Engine::warm`], and merges
//! per-morsel buffers in deterministic order — parallel results are
//! bit-identical to sequential ones.
//!
//! The store is shared and **live**: the engine holds a [`SharedStore`]
//! (`Arc<RwLock<TripleStore>>`) rather than a borrow, and
//! [`Engine::update`] applies insert/delete batches that invalidate only
//! the changed predicates' tries and advance the catalog epoch — the
//! contract serving tiers key their caches by.
//!
//! ```
//! use eh_lubm::{generate_store, GeneratorConfig};
//! use emptyheaded::{Engine, OptFlags, SharedStore};
//!
//! let store = SharedStore::new(generate_store(&GeneratorConfig::tiny(1)));
//! let engine = Engine::new(store.clone(), OptFlags::all());
//! // LUBM query 14: all undergraduate students.
//! let q = eh_lubm::queries::lubm_query(14, &store.read()).unwrap();
//! let result = engine.run(&q).unwrap();
//! assert!(result.cardinality() > 0);
//! ```

mod catalog;
mod engine;
mod error;
mod exec;
mod flags;
mod plan;
mod planner;
mod profile;
mod result;
mod shared;
mod update;

pub use catalog::Catalog;
pub use eh_par::RuntimeConfig;
pub use eh_rdf::{FrozenTrieEntry, LoadInfo, LoadMode, SnapshotError, StoreSnapshot};
pub use eh_wal::{FsyncPolicy, WalError};
pub use engine::{Engine, WalRecovery, WalStatus};
pub use error::EngineError;
pub use flags::{OptFlags, PlannerConfig};
pub use plan::{AtomPlan, NodePlan, Plan};
pub use profile::{DepthProfile, JoinProfile, KernelTally, QueryProfile, WorkerLoad};
pub use result::QueryResult;
pub use shared::SharedStore;
pub use update::{UpdateBatch, UpdateSummary, WalAppend};

#[cfg(test)]
mod proptests;
