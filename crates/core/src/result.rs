//! Materialised query results.

use eh_rdf::{Term, TripleStore};
use eh_trie::TupleBuffer;

/// A materialised, deduplicated query result: one row per distinct binding
/// of the `SELECT` variables, columns in `SELECT` order.
///
/// Rows hold dictionary-encoded ids; [`QueryResult::decode_row`] maps them
/// back to terms. (The paper's timing methodology also excludes id→string
/// output conversion, §IV-A4.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryResult {
    columns: Vec<String>,
    tuples: TupleBuffer,
}

impl QueryResult {
    pub(crate) fn new(columns: Vec<String>, tuples: TupleBuffer) -> QueryResult {
        debug_assert_eq!(columns.len(), tuples.arity());
        QueryResult { columns, tuples }
    }

    /// An empty result with the given column names.
    pub(crate) fn empty(columns: Vec<String>) -> QueryResult {
        let arity = columns.len();
        QueryResult { columns, tuples: TupleBuffer::new(arity) }
    }

    /// Column (variable) names in `SELECT` order.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Number of distinct result rows.
    pub fn cardinality(&self) -> usize {
        self.tuples.len()
    }

    /// True when the result has no rows.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The raw dictionary-encoded rows.
    pub fn tuples(&self) -> &TupleBuffer {
        &self.tuples
    }

    /// Iterate raw rows.
    pub fn iter(&self) -> impl Iterator<Item = &[u32]> {
        self.tuples.rows()
    }

    /// Decode row `i` to terms using the store's dictionary.
    pub fn decode_row<'s>(&self, store: &'s TripleStore, i: usize) -> Vec<&'s Term> {
        self.tuples.row(i).iter().map(|&id| store.dict().decode(id)).collect()
    }

    /// Approximate heap footprint in bytes (tuple payload plus column
    /// names) — the accounting unit of a byte-budgeted result cache.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of_val(self.tuples.as_flat())
            + self.columns.iter().map(|c| c.len() + std::mem::size_of::<String>()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eh_rdf::Triple;

    #[test]
    fn accessors() {
        let mut t = TupleBuffer::new(2);
        t.push(&[0, 1]);
        let r = QueryResult::new(vec!["X".into(), "Y".into()], t);
        assert_eq!(r.cardinality(), 1);
        assert_eq!(r.columns(), &["X".to_string(), "Y".to_string()]);
        assert!(!r.is_empty());
        assert_eq!(r.iter().next().unwrap(), &[0, 1]);
    }

    #[test]
    fn decode_roundtrip() {
        let store = TripleStore::from_triples(vec![Triple::new(
            Term::iri("s"),
            Term::iri("p"),
            Term::iri("o"),
        )]);
        let sid = store.resolve_iri("s").unwrap();
        let mut t = TupleBuffer::new(1);
        t.push(&[sid]);
        let r = QueryResult::new(vec!["X".into()], t);
        assert_eq!(r.decode_row(&store, 0), vec![&Term::iri("s")]);
    }

    #[test]
    fn empty_result() {
        let r = QueryResult::empty(vec!["X".into()]);
        assert!(r.is_empty());
        assert_eq!(r.cardinality(), 0);
    }
}
