//! Query profiling: measured execution statistics behind
//! [`Engine::profile`](crate::Engine::profile) / `EXPLAIN ANALYZE`.
//!
//! Recording is split in two layers:
//!
//! * **Collectors** (`ExecStats`, `JoinStats`, `DepthStats`) — relaxed
//!   atomics shared across worker threads, threaded through the executor
//!   only when a profiled run asks for them (the unprofiled path carries
//!   `None` and pays nothing, not even a clock read).
//! * **Snapshots** ([`QueryProfile`], [`JoinProfile`], [`DepthProfile`],
//!   [`KernelTally`], [`WorkerLoad`]) — plain owned values taken after
//!   the run completes, safe to hold, compare, and render.
//!
//! The counted quantities are **schedule-invariant**: kernel tallies,
//! candidate counts, probe counts, and row counts are identical for 1,
//! 2, or N worker threads (the parallel split materialises the split
//! depth's candidates exactly the way the sequential step would, and all
//! deeper work is per-candidate). Wall times, morsel counts, worker
//! loads, and epoch retries are inherently volatile; the renderer
//! prefixes those lines with `~` so consumers (and the byte-stability
//! tests) can separate the two.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use eh_par::TaskObserver;
use eh_setops::MultiwayKernel;

/// Per-depth recording slots. All counters are relaxed atomics because
/// morsels on different workers record into the same depth concurrently;
/// every increment is exact (nothing is sampled).
#[derive(Debug, Default)]
pub(crate) struct DepthStats {
    word_and: AtomicU64,
    probe_smallest: AtomicU64,
    fold_merge: AtomicU64,
    single_iter: AtomicU64,
    selected_probes: AtomicU64,
    exists_checks: AtomicU64,
    candidates: AtomicU64,
    intersect_ns: AtomicU64,
}

/// Collector for one executed join (a GHD node's Generic Join or the
/// final materialisation join).
#[derive(Debug)]
pub(crate) struct JoinStats {
    pub label: String,
    /// Attribute name per depth, in processing order.
    pub vars: Vec<String>,
    /// Whether each depth is an equality selection.
    pub sel: Vec<bool>,
    pub emit_depth: usize,
    /// How many of the join's relations carried an LSM novelty overlay
    /// (staged, uncompacted deltas) when the spec was assembled. Fixed at
    /// registration — schedule-invariant by construction.
    pub overlay_rels: usize,
    depths: Vec<DepthStats>,
    rows: AtomicU64,
    wall_ns: AtomicU64,
    morsels: AtomicU64,
}

impl JoinStats {
    pub fn new(
        label: String,
        vars: Vec<String>,
        sel: Vec<bool>,
        emit_depth: usize,
        overlay_rels: usize,
    ) -> JoinStats {
        let n = vars.len();
        JoinStats {
            label,
            vars,
            sel,
            emit_depth,
            overlay_rels,
            depths: (0..n).map(|_| DepthStats::default()).collect(),
            rows: AtomicU64::new(0),
            wall_ns: AtomicU64::new(0),
            morsels: AtomicU64::new(0),
        }
    }

    /// Record one multiway-driver dispatch at `depth`: the kernel that
    /// ran (`None` when the driver short-circuited on an empty operand),
    /// the candidate count it produced, and the wall time it took.
    pub fn note_multiway(
        &self,
        depth: usize,
        kernel: Option<MultiwayKernel>,
        candidates: u64,
        ns: u64,
    ) {
        let d = &self.depths[depth];
        match kernel {
            Some(MultiwayKernel::WordAnd) => d.word_and.fetch_add(1, Ordering::Relaxed),
            Some(MultiwayKernel::ProbeSmallest) => d.probe_smallest.fetch_add(1, Ordering::Relaxed),
            Some(MultiwayKernel::FoldMerge) => d.fold_merge.fetch_add(1, Ordering::Relaxed),
            None => 0,
        };
        d.candidates.fetch_add(candidates, Ordering::Relaxed);
        d.intersect_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Record a single-participant iteration (no kernel dispatch) at
    /// `depth` producing `candidates` values.
    pub fn note_single(&self, depth: usize, candidates: u64, ns: u64) {
        let d = &self.depths[depth];
        d.single_iter.fetch_add(1, Ordering::Relaxed);
        d.candidates.fetch_add(candidates, Ordering::Relaxed);
        d.intersect_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Record one equality-selection probe attempt at `depth`.
    pub fn note_selected(&self, depth: usize) {
        self.depths[depth].selected_probes.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one non-materialising EXISTS check at `depth`.
    pub fn note_exists(&self, depth: usize) {
        self.depths[depth].exists_checks.fetch_add(1, Ordering::Relaxed);
    }

    pub fn note_morsels(&self, n: u64) {
        self.morsels.fetch_add(n, Ordering::Relaxed);
    }

    pub fn set_rows(&self, rows: u64) {
        self.rows.store(rows, Ordering::Relaxed);
    }

    pub fn add_wall_ns(&self, ns: u64) {
        self.wall_ns.fetch_add(ns, Ordering::Relaxed);
    }

    fn snapshot(&self) -> JoinProfile {
        JoinProfile {
            label: self.label.clone(),
            emit_depth: self.emit_depth,
            overlay_rels: self.overlay_rels as u64,
            rows: self.rows.load(Ordering::Relaxed),
            wall_ns: self.wall_ns.load(Ordering::Relaxed),
            morsels: self.morsels.load(Ordering::Relaxed),
            depths: self
                .depths
                .iter()
                .enumerate()
                .map(|(i, d)| DepthProfile {
                    var: self.vars[i].clone(),
                    selected: self.sel[i],
                    kernels: KernelTally {
                        word_and: d.word_and.load(Ordering::Relaxed),
                        probe_smallest: d.probe_smallest.load(Ordering::Relaxed),
                        fold_merge: d.fold_merge.load(Ordering::Relaxed),
                        single_iter: d.single_iter.load(Ordering::Relaxed),
                    },
                    selected_probes: d.selected_probes.load(Ordering::Relaxed),
                    exists_checks: d.exists_checks.load(Ordering::Relaxed),
                    candidates: d.candidates.load(Ordering::Relaxed),
                    intersect_ns: d.intersect_ns.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }
}

/// Collector for one plan execution attempt: joins register themselves
/// here in execution order, and one [`TaskObserver`] accumulates worker
/// busy time across every morsel batch of the attempt.
#[derive(Debug)]
pub(crate) struct ExecStats {
    joins: Mutex<Vec<Arc<JoinStats>>>,
    pub observer: Arc<TaskObserver>,
}

impl ExecStats {
    pub fn new(threads: usize) -> ExecStats {
        ExecStats { joins: Mutex::new(Vec::new()), observer: Arc::new(TaskObserver::new(threads)) }
    }

    /// Register a join collector; joins appear in the profile in
    /// registration (execution) order.
    pub fn register(&self, join: Arc<JoinStats>) {
        self.joins.lock().expect("profile lock poisoned").push(join);
    }

    pub fn snapshot(&self, threads: usize, total_ns: u64, epoch_retries: u64) -> QueryProfile {
        let joins = self
            .joins
            .lock()
            .expect("profile lock poisoned")
            .iter()
            .map(|j| j.snapshot())
            .collect();
        QueryProfile {
            total_ns,
            epoch_retries,
            threads,
            joins,
            workers: WorkerLoad { busy_ns: self.observer.busy_ns(), tasks: self.observer.tasks() },
        }
    }
}

/// The executor's per-join observation hook: the join's own collector
/// plus the run-wide worker observer. Carried by `JoinSpec` as an
/// `Option` — `None` (the unprofiled path) records nothing.
#[derive(Debug, Clone)]
pub(crate) struct JoinObs {
    pub stats: Arc<JoinStats>,
    pub tasks: Arc<TaskObserver>,
}

/// How many times each multiway kernel (plus the kernel-free
/// single-participant fast path) ran at a depth or across a whole query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelTally {
    /// k-way bitset word-`AND` dispatches.
    pub word_and: u64,
    /// Leapfrog probe-smallest dispatches.
    pub probe_smallest: u64,
    /// Pairwise vectorized fold-merge dispatches.
    pub fold_merge: u64,
    /// Single-participant direct iterations (no kernel dispatched).
    pub single_iter: u64,
}

impl KernelTally {
    /// Total multiway-driver dispatches (excludes the kernel-free
    /// single-participant path) — the number comparable against
    /// `eh_setops::instrument::kernel_counts()`.
    pub fn dispatches(&self) -> u64 {
        self.word_and + self.probe_smallest + self.fold_merge
    }

    fn add(&mut self, other: &KernelTally) {
        self.word_and += other.word_and;
        self.probe_smallest += other.probe_smallest;
        self.fold_merge += other.fold_merge;
        self.single_iter += other.single_iter;
    }
}

impl std::fmt::Display for KernelTally {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut parts = Vec::new();
        if self.word_and > 0 {
            parts.push(format!("word_and: {}", self.word_and));
        }
        if self.probe_smallest > 0 {
            parts.push(format!("probe_smallest: {}", self.probe_smallest));
        }
        if self.fold_merge > 0 {
            parts.push(format!("fold_merge: {}", self.fold_merge));
        }
        if self.single_iter > 0 {
            parts.push(format!("single: {}", self.single_iter));
        }
        if parts.is_empty() {
            write!(f, "none")
        } else {
            write!(f, "{}", parts.join(", "))
        }
    }
}

/// Measured statistics for one attribute depth of a join.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepthProfile {
    /// Attribute name at this depth.
    pub var: String,
    /// Whether this depth is an equality selection (probe, not iterate).
    pub selected: bool,
    /// Kernel dispatch counts at this depth.
    pub kernels: KernelTally,
    /// Equality-selection probe attempts.
    pub selected_probes: u64,
    /// Non-materialising EXISTS checks (trailing non-output depths).
    pub exists_checks: u64,
    /// Candidate values produced by iteration at this depth (intersection
    /// output sizes summed over every visit).
    pub candidates: u64,
    /// Wall time spent inside this depth's intersections / iterations
    /// (volatile).
    pub intersect_ns: u64,
}

/// Measured statistics for one executed join.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinProfile {
    /// Which join this is: `node N`, `root (pipelined)`, or `final join`.
    pub label: String,
    /// Depth at which the join emits (trailing depths are existence
    /// checks).
    pub emit_depth: usize,
    /// Relations served through an LSM novelty overlay (base trie plus
    /// staged delta) rather than a plain frozen arena. 0 on a fully
    /// compacted catalog; schedule-invariant.
    pub overlay_rels: u64,
    /// Rows this join emitted (pre-deduplication of the final buffer).
    pub rows: u64,
    /// Wall time of the join including sink merging (volatile).
    pub wall_ns: u64,
    /// Morsels scheduled (0 when the join ran inline; volatile).
    pub morsels: u64,
    /// Per-depth breakdown.
    pub depths: Vec<DepthProfile>,
}

/// Per-worker busy time and task counts for one profiled run (volatile).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerLoad {
    /// Busy nanoseconds per worker slot.
    pub busy_ns: Vec<u64>,
    /// Morsels completed per worker slot.
    pub tasks: Vec<u64>,
}

/// The measured execution profile of one query — what `EXPLAIN ANALYZE`
/// renders beneath the plan.
///
/// Kernel tallies, candidate counts, probe counts, and row counts are
/// schedule-invariant (identical across thread counts); wall times,
/// morsels, worker loads, and retry counts are volatile and render on
/// `~`-prefixed lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryProfile {
    /// Total wall time of the returned attempt (volatile).
    pub total_ns: u64,
    /// Times the executed plan was re-run because an update moved the
    /// catalog epoch mid-join (volatile).
    pub epoch_retries: u64,
    /// Worker threads configured for the run.
    pub threads: usize,
    /// Per-join breakdown, in execution order.
    pub joins: Vec<JoinProfile>,
    /// Per-worker load (volatile).
    pub workers: WorkerLoad,
}

impl QueryProfile {
    /// Kernel dispatches summed across every join and depth — the totals
    /// the truthfulness tests compare against the raw `eh-setops`
    /// instrument counters.
    pub fn kernel_totals(&self) -> KernelTally {
        let mut total = KernelTally::default();
        for j in &self.joins {
            for d in &j.depths {
                total.add(&d.kernels);
            }
        }
        total
    }

    /// Render the profile as indented text. Stable (schedule-invariant)
    /// lines carry counts; volatile lines (timings, morsels, workers,
    /// retries) are prefixed with `~` so consumers can strip them when
    /// comparing across runs or thread counts.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "profile:");
        for j in &self.joins {
            let _ = writeln!(out, "  {} (emit depth {}):", j.label, j.emit_depth);
            for (i, d) in j.depths.iter().enumerate() {
                let mode = if d.selected { "selected" } else { "iterate" };
                let mut line = format!("    depth {i} {} [{mode}]:", d.var);
                if d.selected_probes > 0 {
                    line.push_str(&format!(" probes {},", d.selected_probes));
                }
                if !d.selected {
                    line.push_str(&format!(" candidates {},", d.candidates));
                }
                if d.exists_checks > 0 {
                    line.push_str(&format!(" exists checks {},", d.exists_checks));
                }
                line.push_str(&format!(" kernels {{{}}}", d.kernels));
                let _ = writeln!(out, "{line}");
                if d.intersect_ns > 0 {
                    let _ = writeln!(
                        out,
                        "    ~ depth {i} {} intersect time: {} us",
                        d.var,
                        d.intersect_ns / 1_000
                    );
                }
            }
            if j.overlay_rels > 0 {
                let _ = writeln!(out, "    overlay rels: {}", j.overlay_rels);
            }
            let _ = writeln!(out, "    rows emitted: {}", j.rows);
            let _ = writeln!(
                out,
                "  ~ {} wall: {} us, morsels {}",
                j.label,
                j.wall_ns / 1_000,
                j.morsels
            );
        }
        let _ = writeln!(out, "~ threads: {}", self.threads);
        let busy: Vec<String> =
            self.workers.busy_ns.iter().map(|ns| format!("{} us", ns / 1_000)).collect();
        let tasks: Vec<String> = self.workers.tasks.iter().map(|t| t.to_string()).collect();
        let _ =
            writeln!(out, "~ worker busy: [{}], tasks: [{}]", busy.join(", "), tasks.join(", "));
        let _ = writeln!(out, "~ epoch retries: {}", self.epoch_retries);
        let _ = writeln!(out, "~ total wall: {} us", self.total_ns / 1_000);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tallies_sum_across_joins_and_render_marks_volatile_lines() {
        let stats = ExecStats::new(2);
        let j = Arc::new(JoinStats::new(
            "node 0".into(),
            vec!["x".into(), "y".into()],
            vec![false, true],
            2,
            1,
        ));
        stats.register(Arc::clone(&j));
        j.note_multiway(0, Some(MultiwayKernel::WordAnd), 10, 1_000);
        j.note_multiway(0, Some(MultiwayKernel::ProbeSmallest), 3, 500);
        j.note_multiway(0, None, 0, 100); // short-circuit: no kernel counted
        j.note_single(0, 4, 0);
        j.note_selected(1);
        j.set_rows(13);
        j.add_wall_ns(2_000_000);
        let p = stats.snapshot(2, 5_000_000, 1);
        let totals = p.kernel_totals();
        assert_eq!(
            totals,
            KernelTally { word_and: 1, probe_smallest: 1, fold_merge: 0, single_iter: 1 }
        );
        assert_eq!(totals.dispatches(), 2);
        assert_eq!(p.joins[0].depths[0].candidates, 17);
        assert_eq!(p.joins[0].depths[1].selected_probes, 1);
        assert_eq!(p.joins[0].rows, 13);
        let text = p.render();
        assert!(text.contains("depth 0 x [iterate]"), "{text}");
        assert!(text.contains("depth 1 y [selected]"), "{text}");
        assert!(text.contains("rows emitted: 13"), "{text}");
        // Every timing-bearing line is ~-prefixed (stable lines never
        // carry wall-clock content), so stripping ~ lines leaves only
        // schedule-invariant output.
        for line in text.lines() {
            if line.contains(" us") || line.contains("morsels") || line.contains("retries") {
                assert!(line.trim_start().starts_with('~'), "volatile line not marked: {line:?}");
            }
        }
        let stable: Vec<&str> = text.lines().filter(|l| !l.trim_start().starts_with('~')).collect();
        assert!(stable.iter().any(|l| l.contains("kernels {word_and: 1, probe_smallest: 1")));
        // The overlay tally is fixed at registration, so it renders on a
        // stable (unprefixed) line — and only when non-zero.
        assert!(stable.iter().any(|l| l.contains("overlay rels: 1")), "{text}");
    }

    #[test]
    fn empty_tally_renders_none() {
        assert_eq!(KernelTally::default().to_string(), "none");
    }
}
