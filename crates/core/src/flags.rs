//! Optimization toggles (the knobs behind the paper's Table I ablation)
//! and the execution-runtime configuration.

use eh_par::RuntimeConfig;

/// Independent switches for the three classic optimizations of §III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OptFlags {
    /// §III-A: mixed set layouts (bitset + uint array). Off = uint arrays
    /// everywhere (the "+Layout" ablation baseline).
    pub layouts: bool,
    /// §III-B1: reorder attributes *within* GHD nodes so selections come
    /// first ("+Attribute").
    pub attr_reorder: bool,
    /// §III-B2: selection-aware GHD choice pushing selections down
    /// *across* nodes ("+GHD").
    pub ghd_pushdown: bool,
    /// §III-C: pipeline the root node into the final result
    /// ("+Pipelining").
    pub pipelining: bool,
}

impl OptFlags {
    /// Every optimization on (the configuration the paper's Table II
    /// EmptyHeaded column uses).
    pub fn all() -> OptFlags {
        OptFlags { layouts: true, attr_reorder: true, ghd_pushdown: true, pipelining: true }
    }

    /// Every optimization off (the unoptimized worst-case optimal
    /// baseline).
    pub fn none() -> OptFlags {
        OptFlags { layouts: false, attr_reorder: false, ghd_pushdown: false, pipelining: false }
    }

    /// The paper's Table I accumulates optimizations left to right:
    /// `+Layout`, `+Attribute`, `+GHD`, `+Pipelining`. `cumulative(k)`
    /// returns the configuration with the first `k` optimizations enabled
    /// (`k = 0` is [`OptFlags::none`], `k = 4` is [`OptFlags::all`]).
    pub fn cumulative(k: usize) -> OptFlags {
        OptFlags { layouts: k >= 1, attr_reorder: k >= 2, ghd_pushdown: k >= 3, pipelining: k >= 4 }
    }
}

impl Default for OptFlags {
    fn default() -> Self {
        OptFlags::all()
    }
}

/// Full planner configuration: optimization flags plus the plan-shape
/// overrides used by the LogicBlox-style baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PlannerConfig {
    /// The optimization toggles.
    pub flags: OptFlags,
    /// Skip GHD decomposition and run the generic worst-case optimal join
    /// over the whole query in one node — how an engine without GHD plans
    /// (LogicBlox's original design, per the paper's characterisation)
    /// executes.
    pub force_single_node: bool,
    /// Selection-blind join ordering: order join variables by distinct
    /// counts (a competent join optimizer) but leave equality selections
    /// to be *checked last* rather than probed first. This models why
    /// LogicBlox matches EmptyHeaded on cyclic joins yet loses two orders
    /// of magnitude on selective patterns (paper §I, §IV-B).
    pub selection_blind_order: bool,
    /// Execution-runtime knobs: worker threads and morsel granularity.
    /// The default is fully sequential; parallel execution produces
    /// bit-identical results (the runtime merges morsel outputs in
    /// deterministic order).
    pub runtime: RuntimeConfig,
    /// Compaction trigger, absolute arm: a predicate's staged delta is
    /// folded into a fresh base table once it holds at least this many
    /// pairs. `0` means the built-in default (see
    /// [`PlannerConfig::compaction_min_staged`]).
    pub compact_min_staged: u32,
    /// Compaction trigger, relative arm: compact once the staged delta
    /// reaches this percentage of the base table (whichever arm yields
    /// the *larger* threshold wins, so big predicates aren't re-frozen
    /// over trivial deltas). `0` means the built-in default (see
    /// [`PlannerConfig::compaction_frac_pct`]).
    pub compact_frac_pct: u32,
    /// When appended WAL records reach stable storage (used only once a
    /// log is attached via [`Engine::open_wal`](crate::Engine::open_wal)).
    /// Defaults to [`FsyncPolicy::Always`] — durability first; opt into
    /// `interval:<ms>`/`never` to trade the loss window for latency.
    pub wal_fsync: eh_wal::FsyncPolicy,
}

impl PlannerConfig {
    /// Standard EmptyHeaded configuration with the given flags.
    pub fn with_flags(flags: OptFlags) -> PlannerConfig {
        PlannerConfig {
            flags,
            force_single_node: false,
            selection_blind_order: false,
            runtime: RuntimeConfig::serial(),
            compact_min_staged: 0,
            compact_frac_pct: 0,
            wal_fsync: eh_wal::FsyncPolicy::Always,
        }
    }

    /// The LogicBlox-style configuration: single-node plan, uint-only
    /// layouts, selection-blind (but join-aware) attribute order.
    pub fn logicblox_style() -> PlannerConfig {
        PlannerConfig {
            flags: OptFlags::none(),
            force_single_node: true,
            selection_blind_order: true,
            runtime: RuntimeConfig::serial(),
            compact_min_staged: 0,
            compact_frac_pct: 0,
            wal_fsync: eh_wal::FsyncPolicy::Always,
        }
    }

    /// Replace the execution-runtime configuration.
    pub fn with_runtime(mut self, runtime: RuntimeConfig) -> PlannerConfig {
        self.runtime = runtime;
        self
    }

    /// Run joins and index construction on `num_threads` workers.
    pub fn with_threads(mut self, num_threads: usize) -> PlannerConfig {
        self.runtime =
            RuntimeConfig::with_threads(num_threads).with_morsel_size(self.runtime.morsel_size);
        self
    }

    /// Override the compaction trigger: absolute staged-pair floor and
    /// percentage of the base table (either `0` keeps its default).
    pub fn with_compaction(mut self, min_staged: u32, frac_pct: u32) -> PlannerConfig {
        self.compact_min_staged = min_staged;
        self.compact_frac_pct = frac_pct;
        self
    }

    /// Choose when WAL appends reach stable storage (effective once
    /// [`Engine::open_wal`](crate::Engine::open_wal) attaches a log).
    pub fn with_wal_fsync(mut self, policy: eh_wal::FsyncPolicy) -> PlannerConfig {
        self.wal_fsync = policy;
        self
    }

    /// Effective absolute compaction floor (field `compact_min_staged`,
    /// defaulting to 4096 staged pairs when unset).
    pub fn compaction_min_staged(&self) -> usize {
        if self.compact_min_staged == 0 {
            4096
        } else {
            self.compact_min_staged as usize
        }
    }

    /// Effective relative compaction trigger in percent of the base table
    /// (field `compact_frac_pct`, defaulting to 20 when unset).
    pub fn compaction_frac_pct(&self) -> usize {
        if self.compact_frac_pct == 0 {
            20
        } else {
            self.compact_frac_pct as usize
        }
    }

    /// The staged-pair count at which a predicate with `base_len` resident
    /// pairs gets compacted: `max(absolute floor, frac% of base)`. The
    /// `max` keeps update cost O(delta) on large predicates — a LUBM-scale
    /// table is never re-frozen over a 100-triple batch.
    pub fn compaction_threshold(&self, base_len: usize) -> usize {
        self.compaction_min_staged().max(base_len * self.compaction_frac_pct() / 100)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cumulative_matches_table_one_order() {
        assert_eq!(OptFlags::cumulative(0), OptFlags::none());
        assert_eq!(OptFlags::cumulative(4), OptFlags::all());
        let one = OptFlags::cumulative(1);
        assert!(one.layouts && !one.attr_reorder);
        let three = OptFlags::cumulative(3);
        assert!(three.ghd_pushdown && !three.pipelining);
    }

    #[test]
    fn logicblox_profile() {
        let c = PlannerConfig::logicblox_style();
        assert!(c.force_single_node);
        assert_eq!(c.flags, OptFlags::none());
        assert!(!c.runtime.is_parallel());
    }

    #[test]
    fn runtime_builders() {
        let c = PlannerConfig::with_flags(OptFlags::all()).with_threads(4);
        assert_eq!(c.runtime.num_threads, 4);
        assert_eq!(c.runtime.morsel_size, RuntimeConfig::DEFAULT_MORSEL_SIZE);
        let c = c.with_runtime(RuntimeConfig::with_threads(2).with_morsel_size(8));
        assert_eq!((c.runtime.num_threads, c.runtime.morsel_size), (2, 8));
        // The default configuration stays sequential: no behaviour change
        // for engines that never opt in.
        assert_eq!(PlannerConfig::default().runtime, RuntimeConfig::serial());
    }

    #[test]
    fn compaction_knobs_default_and_override() {
        let c = PlannerConfig::default();
        assert_eq!(c.compaction_min_staged(), 4096);
        assert_eq!(c.compaction_frac_pct(), 20);
        // max(floor, frac%): small bases use the floor, huge bases scale.
        assert_eq!(c.compaction_threshold(100), 4096);
        assert_eq!(c.compaction_threshold(1_000_000), 200_000);
        let c = c.with_compaction(8, 50);
        assert_eq!(c.compaction_threshold(0), 8);
        assert_eq!(c.compaction_threshold(100), 50);
    }
}
