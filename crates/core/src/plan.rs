//! Physical query plans: a GHD, a global attribute order, per-node
//! execution schedules, and the pipelining decision.

use eh_ghd::Ghd;
use eh_lp::Rational;
use eh_query::{ConjunctiveQuery, Var};

/// How one atom participates in a node's generic join.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomPlan {
    /// Index into the query's atom list.
    pub atom_index: usize,
    /// Trie column order: `true` = `[subject, object]`, `false` =
    /// `[object, subject]` (chosen so trie levels agree with the global
    /// attribute order).
    pub subject_first: bool,
    /// Variables per trie level (length 2 for RDF atoms).
    pub attrs: Vec<Var>,
}

/// Execution schedule for one GHD node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodePlan {
    /// Bag variables in processing order (global order restricted to the
    /// bag).
    pub vars: Vec<Var>,
    /// Output variables (unselected bag vars needed by the projection or
    /// by adjacent nodes), in processing order.
    pub output: Vec<Var>,
    /// Variables shared with the parent node, in processing order.
    pub shared_with_parent: Vec<Var>,
    /// Atom schedules for λ(t).
    pub atoms: Vec<AtomPlan>,
}

/// A complete physical plan.
#[derive(Debug, Clone)]
pub struct Plan {
    /// The chosen decomposition.
    pub ghd: Ghd,
    /// The global attribute order (paper §II-C): all query variables,
    /// selections first when `attr_reorder` is on.
    pub global_order: Vec<Var>,
    /// Inverse of `global_order`: variable → rank.
    pub position: Vec<usize>,
    /// Per-GHD-node schedules (indexed like `ghd` nodes).
    pub nodes: Vec<NodePlan>,
    /// Whether the root streams into the final result (§III-C).
    pub pipelined: bool,
    /// The plan's fractional hypertree width (reporting only).
    pub width: Rational,
}

impl Plan {
    /// Human-readable rendering (used by the Figure 2/3 harness binaries
    /// and for debugging).
    pub fn render(&self, q: &ConjunctiveQuery) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "plan for: {q}");
        let order: Vec<&str> = self.global_order.iter().map(|&v| q.var_name(v)).collect();
        let _ = writeln!(out, "global attribute order: [{}]", order.join(", "));
        let _ = writeln!(out, "fhw: {}   pipelined: {}", self.width, self.pipelined);
        let _ = write!(
            out,
            "{}",
            self.ghd.render(&|v| q.var_name(v).to_string(), &|e| {
                let a = &q.atoms()[e];
                let short = a.relation.rsplit(['/', '#']).next().unwrap_or(&a.relation);
                format!("{short}({}, {})", q.var_name(a.vars[0]), q.var_name(a.vars[1]))
            },)
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::flags::{OptFlags, PlannerConfig};
    use crate::planner::build_plan;
    use eh_query::QueryBuilder;

    #[test]
    fn render_mentions_order_and_tree() {
        let mut qb = QueryBuilder::new();
        let (x, y, z) = (qb.var("x"), qb.var("y"), qb.var("z"));
        qb.atom("R", 0, x, y).atom("S", 1, y, z);
        let q = qb.select(vec![x, z]).build().unwrap();
        let plan = build_plan(&q, PlannerConfig::with_flags(OptFlags::all()));
        let text = plan.render(&q);
        assert!(text.contains("global attribute order"), "{text}");
        assert!(text.contains("fhw: 1"), "{text}");
        assert!(text.contains("R(x, y)"), "{text}");
    }
}
