//! Update batches: the unit of live mutation the engine applies.

use eh_rdf::Triple;

/// A batch of triple insertions and deletions, applied atomically by
/// [`Engine::update`](crate::Engine::update).
///
/// Semantics follow SPARQL Update's `DELETE`/`INSERT` convention:
/// deletions apply first, then insertions, so a triple staged in both
/// lists is present afterwards. Duplicate stagings collapse (RDF set
/// semantics), deleting an absent triple is a no-op, and inserting a
/// resident one is too — only *actual* change invalidates indexes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UpdateBatch {
    /// Triples to add (dictionary grows as needed).
    pub inserts: Vec<Triple>,
    /// Triples to remove (unknown terms are ignored).
    pub deletes: Vec<Triple>,
}

impl UpdateBatch {
    /// An empty batch.
    pub fn new() -> UpdateBatch {
        UpdateBatch::default()
    }

    /// Stage an insertion.
    pub fn insert(&mut self, t: Triple) -> &mut UpdateBatch {
        self.inserts.push(t);
        self
    }

    /// Stage a deletion.
    pub fn delete(&mut self, t: Triple) -> &mut UpdateBatch {
        self.deletes.push(t);
        self
    }

    /// Number of staged operations (inserts plus deletes).
    pub fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// True when nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }
}

/// WAL bookkeeping for one logged batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalAppend {
    /// Sequence number the log assigned to this batch.
    pub seq: u64,
    /// Total log size in bytes after the append.
    pub wal_bytes: u64,
    /// Whether the append was `fdatasync`ed before the batch staged
    /// (per the configured [`FsyncPolicy`](eh_wal::FsyncPolicy)).
    pub fsynced: bool,
    /// Microseconds spent in `fdatasync` (0 when not synced).
    pub fsync_us: u64,
}

/// What one applied batch did, as observed by the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateSummary {
    /// Triples actually added (resident duplicates don't count).
    pub inserted: usize,
    /// Triples actually removed (absent victims don't count).
    pub deleted: usize,
    /// Predicates whose tables changed.
    pub changed_predicates: usize,
    /// Hot tries rebuilt eagerly after invalidation (previously cached
    /// orders of the changed predicates). Staged (overlay) updates leave
    /// this at 0 — base tries survive; only compaction rebuilds.
    pub rebuilt_tries: usize,
    /// Changed predicates whose deltas crossed the compaction threshold
    /// and were folded into fresh base tables as part of this batch. The
    /// remaining `changed_predicates - compacted_predicates` predicates
    /// serve their novelty from the in-memory overlay.
    pub compacted_predicates: usize,
    /// The catalog epoch after the batch. Unchanged when the batch was a
    /// no-op on table contents — no-ops don't invalidate anything.
    pub epoch: u64,
    /// Per-shard compaction pause times in microseconds, `(shard, µs)`,
    /// one entry per shard that folded at least one delta during this
    /// batch. Empty when nothing compacted — the common staged case.
    /// Shard-local compaction means a skewed shard's fold pauses only
    /// itself; this is the observable that proves it.
    pub shard_pauses: Vec<(usize, u64)>,
    /// The batch's write-ahead-log append, `None` when no log is
    /// attached (or for maintenance summaries like
    /// [`Engine::compact`](crate::Engine::compact), which change no
    /// logical contents and are never logged).
    pub wal: Option<WalAppend>,
}
