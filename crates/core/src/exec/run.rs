//! The two-pass GHD driver (paper §II-C): bottom-up Generic-Join per node
//! with children's intermediates joining as extra relations, then a final
//! materialisation pass — streamed from the root when the plan is
//! pipelined (§III-C), otherwise a join over the per-node results
//! (Yannakakis-style message passing).
//!
//! Every join in the driver runs through
//! [`run_join_parallel`](crate::exec::generic::run_join_parallel): with a
//! parallel [`RuntimeConfig`] the outermost iterated attribute is
//! morsel-partitioned across worker threads and per-morsel buffers are
//! concatenated in morsel order, so results are bit-identical to the
//! sequential path.

use std::sync::Arc;
use std::time::Instant;

use eh_par::RuntimeConfig;
use eh_query::{ConjunctiveQuery, Var};
use eh_trie::{FrozenTrie, LayoutPolicy, TupleBuffer};

use crate::catalog::{Catalog, RelOperands};
use crate::exec::generic::{run_join, run_join_parallel, JoinSpec, PreparedRel};
use crate::plan::Plan;
use crate::profile::{ExecStats, JoinObs, JoinStats};
use crate::result::QueryResult;

/// A materialised per-node result.
struct NodeResult {
    /// Output variables in processing order (columns of `tuples`).
    attrs: Vec<Var>,
    tuples: TupleBuffer,
    /// For zero-attribute nodes: whether the node join was non-empty.
    satisfiable: bool,
}

impl NodeResult {
    fn is_empty_relation(&self) -> bool {
        if self.attrs.is_empty() {
            !self.satisfiable
        } else {
            self.tuples.is_empty()
        }
    }
}

fn layout_policy(auto: bool) -> LayoutPolicy {
    if auto {
        LayoutPolicy::Auto
    } else {
        LayoutPolicy::UintOnly
    }
}

/// Attach a profiling collector to a join about to run: registers a
/// [`JoinStats`] under `label` with the run's [`ExecStats`] and hands the
/// executor its recording hook. `None` stats (the unprofiled path) cost
/// nothing.
fn observe_join(
    stats: Option<&ExecStats>,
    q: &ConjunctiveQuery,
    label: String,
    vars: &[Var],
    sel: &[Option<u32>],
    emit_depth: usize,
    overlay_rels: usize,
) -> Option<JoinObs> {
    let stats = stats?;
    let join = Arc::new(JoinStats::new(
        label,
        vars.iter().map(|&v| q.var_name(v).to_string()).collect(),
        sel.iter().map(|s| s.is_some()).collect(),
        emit_depth,
        overlay_rels,
    ));
    stats.register(Arc::clone(&join));
    Some(JoinObs { stats: join, tasks: Arc::clone(&stats.observer) })
}

/// Execute `plan` for `q`, materialising the projection. With `stats`
/// the run records a per-join, per-depth execution profile (kernel
/// dispatches, candidate counts, probes, wall times); without it the
/// executor performs no recording at all.
pub(crate) fn execute_plan(
    catalog: &Catalog,
    q: &ConjunctiveQuery,
    plan: &Plan,
    auto_layout: bool,
    rt: RuntimeConfig,
    stats: Option<&ExecStats>,
) -> QueryResult {
    let columns: Vec<String> = q.projection().iter().map(|&v| q.var_name(v).to_string()).collect();
    if q.has_missing_constant() {
        return QueryResult::empty(columns);
    }

    // Single-node plans emit straight into the final buffer: there are no
    // intermediates to materialise.
    if plan.ghd.num_nodes() == 1 {
        let root = plan.ghd.root;
        let node = &plan.nodes[root];
        let proj_positions: Vec<usize> = q
            .projection()
            .iter()
            .map(|v| node.vars.iter().position(|w| w == v).expect("projection var in single node"))
            .collect();
        // Subject-rooted plans on a partitioned store run shard-local:
        // every atom's subjects hash to the executing shard, so the
        // shards' results are independent and concatenate.
        if let Some(out) =
            run_shard_local(catalog, q, plan, root, &proj_positions, auto_layout, rt, stats)
        {
            return QueryResult::new(columns, out);
        }
        let spec = node_spec(
            catalog,
            q,
            plan,
            root,
            Vec::new(),
            auto_layout,
            stats,
            format!("node {root}"),
        );
        let out = collect_rows(&spec, &proj_positions, rt);
        return QueryResult::new(columns, out);
    }

    // Bottom-up pass over non-root nodes (post-order ends at the root).
    let mut results: Vec<Option<NodeResult>> = (0..plan.ghd.num_nodes()).map(|_| None).collect();
    for t in plan.ghd.post_order() {
        if t == plan.ghd.root {
            break;
        }
        match run_node(catalog, q, plan, t, &results, auto_layout, rt, stats) {
            Some(r) => results[t] = Some(r),
            None => return QueryResult::empty(columns),
        }
    }

    if plan.pipelined {
        // §III-C: stream the root join directly into the final result.
        let out = run_pipelined(catalog, q, plan, &results, auto_layout, rt, stats);
        return QueryResult::new(columns, out);
    }

    // Materialise the root like any other node, then join all node
    // results (the top-down message-passing pass).
    match run_node(catalog, q, plan, plan.ghd.root, &results, auto_layout, rt, stats) {
        Some(r) => results[plan.ghd.root] = Some(r),
        None => return QueryResult::empty(columns),
    }
    QueryResult::new(columns, final_join(q, plan, &results, auto_layout, rt, stats))
}

/// Per-morsel sink for a node join: materialised output rows plus the
/// satisfiability witness for zero-attribute (boolean) nodes.
struct NodeSink {
    tuples: TupleBuffer,
    row: Vec<u32>,
    satisfiable: bool,
}

/// Run one node's generic join, materialising its output columns.
/// Returns `None` when the node (or one of its children) is empty, which
/// empties the whole query.
#[allow(clippy::too_many_arguments)]
fn run_node(
    catalog: &Catalog,
    q: &ConjunctiveQuery,
    plan: &Plan,
    t: usize,
    results: &[Option<NodeResult>],
    auto_layout: bool,
    rt: RuntimeConfig,
    stats: Option<&ExecStats>,
) -> Option<NodeResult> {
    let children = children_rels(plan, t, results, auto_layout)?;
    let spec = node_spec(catalog, q, plan, t, children, auto_layout, stats, format!("node {t}"));
    let node = &plan.nodes[t];
    let t0 = spec.obs.as_ref().map(|_| Instant::now());
    let out_positions: Vec<usize> =
        node.output.iter().map(|v| node.vars.iter().position(|w| w == v).unwrap()).collect();
    let sinks = run_join_parallel(
        &spec,
        rt,
        || NodeSink {
            tuples: TupleBuffer::new(node.output.len()),
            row: vec![0u32; node.output.len()],
            satisfiable: false,
        },
        |sink, binding| {
            sink.satisfiable = true;
            if !sink.row.is_empty() {
                for (j, &p) in out_positions.iter().enumerate() {
                    sink.row[j] = binding[p];
                }
                sink.tuples.push(&sink.row);
            }
        },
    );
    let mut tuples = TupleBuffer::new(node.output.len());
    let mut satisfiable = false;
    for sink in sinks {
        tuples.append(&sink.tuples);
        satisfiable |= sink.satisfiable;
    }
    // Canonicalise once at the source: every consumer of a node result
    // turns it into a trie (which needs sorted unique tuples anyway), so
    // sorting + deduplicating here lets them all take the arena-direct
    // `FrozenTrie::from_sorted` path and shrinks duplicated intermediates
    // before they are cloned around.
    tuples.sort_dedup();
    if let (Some(o), Some(t0)) = (&spec.obs, t0) {
        o.stats.set_rows(tuples.len() as u64);
        o.stats.add_wall_ns(t0.elapsed().as_nanos() as u64);
    }
    let result = NodeResult { attrs: node.output.clone(), tuples, satisfiable };
    if result.is_empty_relation() {
        None
    } else {
        Some(result)
    }
}

/// Build the JoinSpec for a node: its λ atoms plus prepared child
/// intermediates.
#[allow(clippy::too_many_arguments)]
fn node_spec(
    catalog: &Catalog,
    q: &ConjunctiveQuery,
    plan: &Plan,
    t: usize,
    mut extra: Vec<PreparedRel>,
    auto_layout: bool,
    stats: Option<&ExecStats>,
    label: String,
) -> JoinSpec {
    let node = &plan.nodes[t];
    let depth_of = |v: Var| node.vars.iter().position(|&w| w == v).unwrap();
    let mut rels: Vec<PreparedRel> = node
        .atoms
        .iter()
        .map(|ap| {
            let depths = ap.attrs.iter().map(|&v| depth_of(v)).collect();
            match catalog.relation(&q.atoms()[ap.atom_index], ap.subject_first, auto_layout) {
                RelOperands::Single { trie, overlay } => PreparedRel::single(trie, overlay, depths),
                RelOperands::Sharded { ops, union_root } => {
                    PreparedRel::sharded(ops, union_root, depths)
                }
            }
        })
        .collect();
    rels.append(&mut extra);
    let sel: Vec<Option<u32>> = node
        .vars
        .iter()
        .map(|&v| q.selection(v).map(|c| c.expect("missing constants short-circuit earlier")))
        .collect();
    let emit_depth = node.output.iter().map(|v| depth_of(*v) + 1).max().unwrap_or(0);
    let overlay_rels = rels
        .iter()
        .filter(|r| r.overlay.is_some() || r.shards.iter().any(|s| s.overlay.is_some()))
        .count();
    let obs = observe_join(stats, q, label, &node.vars, &sel, emit_depth, overlay_rels);
    JoinSpec { num_vars: node.vars.len(), sel, emit_depth, obs, rels }
}

/// Prepared relations for a node's child intermediates: each child result
/// projected onto the variables shared with this node. Returns `None`
/// when a child result is empty (the whole query is then empty).
fn children_rels(
    plan: &Plan,
    t: usize,
    results: &[Option<NodeResult>],
    auto_layout: bool,
) -> Option<Vec<PreparedRel>> {
    let node = &plan.nodes[t];
    let depth_of = |v: Var| node.vars.iter().position(|&w| w == v).unwrap();
    let mut rels = Vec::new();
    for &c in &plan.ghd.children[t] {
        let child = results[c].as_ref().expect("post-order visits children first");
        if child.is_empty_relation() {
            return None;
        }
        let shared = &plan.nodes[c].shared_with_parent;
        if shared.is_empty() {
            continue; // cross product: no constraint to contribute
        }
        let depths: Vec<usize> = shared.iter().map(|&v| depth_of(v)).collect();
        // If the shared variables are a prefix of the child's output
        // order, the full child trie participates with truncated depths
        // (its suffix levels are simply never descended) and the
        // already-sorted tuples freeze without re-sorting; otherwise
        // materialise the projection (permuting breaks the sort order).
        let is_prefix = child.attrs.starts_with(shared);
        let trie = if is_prefix {
            Arc::new(FrozenTrie::from_sorted(child.tuples.clone(), layout_policy(auto_layout)))
        } else {
            let cols: Vec<usize> =
                shared.iter().map(|v| child.attrs.iter().position(|w| w == v).unwrap()).collect();
            Arc::new(FrozenTrie::build(child.tuples.permute(&cols), layout_policy(auto_layout)))
        };
        rels.push(PreparedRel::single(trie, None, depths));
    }
    Some(rels)
}

/// The shard-local execution path: when the plan is a single node whose
/// depth-0 variable is every atom's subject (the store's partitioning
/// key), any result row's root binding hashes to exactly one shard, and
/// each atom restricted to that shard contains precisely the pairs that
/// can participate. The join therefore runs independently per shard —
/// shards become the outer morsel dimension — and the concatenated
/// results, canonicalised by the same trailing `sort_dedup` as every
/// other path, are byte-identical to the unpartitioned engine's.
///
/// Returns `None` when the store is unpartitioned or the plan is not
/// subject-rooted (some atom roots at a non-subject attribute); the
/// caller then falls back to the cross-shard union operands.
#[allow(clippy::too_many_arguments)]
fn run_shard_local(
    catalog: &Catalog,
    q: &ConjunctiveQuery,
    plan: &Plan,
    t: usize,
    positions: &[usize],
    auto_layout: bool,
    rt: RuntimeConfig,
    stats: Option<&ExecStats>,
) -> Option<TupleBuffer> {
    let partitions = catalog.partitions();
    if partitions <= 1 {
        return None;
    }
    let node = &plan.nodes[t];
    let root_var = *node.vars.first()?;
    if !node.atoms.iter().all(|ap| ap.subject_first && ap.attrs.first() == Some(&root_var)) {
        return None;
    }
    // Specs are built serially: catalog publication and profile
    // registration order stay deterministic regardless of thread count.
    let specs: Vec<JoinSpec> = (0..partitions)
        .map(|shard| shard_node_spec(catalog, q, plan, t, auto_layout, stats, shard))
        .collect();
    let parts = eh_par::run_shards(&rt, partitions, |shard| {
        let spec = &specs[shard];
        let t0 = spec.obs.as_ref().map(|_| Instant::now());
        let mut sink =
            RowSink { out: TupleBuffer::new(positions.len()), row: vec![0u32; positions.len()] };
        run_join(spec, &mut |binding| {
            for (j, &p) in positions.iter().enumerate() {
                sink.row[j] = binding[p];
            }
            sink.out.push(&sink.row);
        });
        if let (Some(o), Some(t0)) = (&spec.obs, t0) {
            o.stats.set_rows(sink.out.len() as u64);
            o.stats.add_wall_ns(t0.elapsed().as_nanos() as u64);
        }
        sink.out
    });
    let mut out = TupleBuffer::new(positions.len());
    for part in &parts {
        out.append(part);
    }
    out.sort_dedup();
    Some(out)
}

/// [`node_spec`] restricted to one shard: every atom serves that shard's
/// base trie and overlay only. Used by [`run_shard_local`], whose
/// eligibility check guarantees the restriction is lossless.
fn shard_node_spec(
    catalog: &Catalog,
    q: &ConjunctiveQuery,
    plan: &Plan,
    t: usize,
    auto_layout: bool,
    stats: Option<&ExecStats>,
    shard: usize,
) -> JoinSpec {
    let node = &plan.nodes[t];
    let depth_of = |v: Var| node.vars.iter().position(|&w| w == v).unwrap();
    let rels: Vec<PreparedRel> = node
        .atoms
        .iter()
        .map(|ap| {
            let (trie, overlay) = catalog.shard_relation(
                &q.atoms()[ap.atom_index],
                ap.subject_first,
                auto_layout,
                shard,
            );
            PreparedRel::single(trie, overlay, ap.attrs.iter().map(|&v| depth_of(v)).collect())
        })
        .collect();
    let sel: Vec<Option<u32>> = node
        .vars
        .iter()
        .map(|&v| q.selection(v).map(|c| c.expect("missing constants short-circuit earlier")))
        .collect();
    let emit_depth = node.output.iter().map(|v| depth_of(*v) + 1).max().unwrap_or(0);
    let overlay_rels = rels.iter().filter(|r| r.overlay.is_some()).count();
    let label = format!("node {t} [shard {shard}]");
    let obs = observe_join(stats, q, label, &node.vars, &sel, emit_depth, overlay_rels);
    JoinSpec { num_vars: node.vars.len(), sel, emit_depth, obs, rels }
}

/// Per-morsel sink for projection collection.
struct RowSink {
    out: TupleBuffer,
    row: Vec<u32>,
}

/// Run a join and collect `binding[positions]` rows, deduplicated.
/// Records the join's row count and wall time when the spec is observed.
fn collect_rows(spec: &JoinSpec, positions: &[usize], rt: RuntimeConfig) -> TupleBuffer {
    debug_assert!(positions.iter().all(|&p| p < spec.emit_depth.max(1)));
    let t0 = spec.obs.as_ref().map(|_| Instant::now());
    let sinks = run_join_parallel(
        spec,
        rt,
        || RowSink { out: TupleBuffer::new(positions.len()), row: vec![0u32; positions.len()] },
        |sink, binding| {
            for (j, &p) in positions.iter().enumerate() {
                sink.row[j] = binding[p];
            }
            sink.out.push(&sink.row);
        },
    );
    let mut out = TupleBuffer::new(positions.len());
    for sink in sinks {
        out.append(&sink.out);
    }
    out.sort_dedup();
    if let (Some(o), Some(t0)) = (&spec.obs, t0) {
        o.stats.set_rows(out.len() as u64);
        o.stats.add_wall_ns(t0.elapsed().as_nanos() as u64);
    }
    out
}

/// Final pass: generic join over all node-result tries, projecting to
/// SELECT order.
fn final_join(
    q: &ConjunctiveQuery,
    plan: &Plan,
    results: &[Option<NodeResult>],
    auto_layout: bool,
    rt: RuntimeConfig,
    stats: Option<&ExecStats>,
) -> TupleBuffer {
    let live: Vec<&NodeResult> = results.iter().flatten().filter(|r| !r.attrs.is_empty()).collect();
    // Join variables: union of live attrs in global order.
    let mut join_vars: Vec<Var> = live.iter().flat_map(|r| r.attrs.iter().copied()).collect();
    join_vars.sort_by_key(|&v| plan.position[v]);
    join_vars.dedup();
    let rels: Vec<PreparedRel> = live
        .iter()
        .map(|r| {
            // Node results are sorted unique at the source (run_node).
            let trie =
                Arc::new(FrozenTrie::from_sorted(r.tuples.clone(), layout_policy(auto_layout)));
            let depths =
                r.attrs.iter().map(|v| join_vars.iter().position(|w| w == v).unwrap()).collect();
            PreparedRel::single(trie, None, depths)
        })
        .collect();
    let proj_positions: Vec<usize> = q
        .projection()
        .iter()
        .map(|v| {
            join_vars.iter().position(|w| w == v).expect("projection vars live in node outputs")
        })
        .collect();
    let emit_depth = proj_positions.iter().map(|&p| p + 1).max().unwrap_or(0);
    let sel: Vec<Option<u32>> = vec![None; join_vars.len()];
    let obs = observe_join(stats, q, "final join".to_string(), &join_vars, &sel, emit_depth, 0);
    let spec = JoinSpec { num_vars: join_vars.len(), sel, emit_depth, obs, rels };
    collect_rows(&spec, &proj_positions, rt)
}

/// One node's contribution to the pipelined emission: its result trie,
/// where to read its shared-prefix values in the assembled row, and where
/// its private columns land.
struct NodeExt {
    trie: Arc<FrozenTrie>,
    /// Positions in the *assembled* output row supplying the shared
    /// prefix values (bound by the root or an earlier extension).
    shared_positions: Vec<usize>,
    /// Column offset in the assembled row where private values start.
    base: usize,
}

/// Per-morsel sink for the pipelined pass: output rows plus this morsel's
/// own row-assembly scratch space.
struct PipeSink {
    out: TupleBuffer,
    assembled: Vec<u32>,
    row: Vec<u32>,
}

/// Pipelined path (§III-C, applied transitively down the tree): run the
/// root join and, per root binding, extend with every descendant node's
/// private columns by direct trie lookup. The planner guaranteed each
/// node's shared-with-parent variables are a prefix of its output order,
/// and BFS order guarantees shared values are assembled before use.
#[allow(clippy::too_many_arguments)]
fn run_pipelined(
    catalog: &Catalog,
    q: &ConjunctiveQuery,
    plan: &Plan,
    results: &[Option<NodeResult>],
    auto_layout: bool,
    rt: RuntimeConfig,
    stats: Option<&ExecStats>,
) -> TupleBuffer {
    let root = plan.ghd.root;
    let node = &plan.nodes[root];
    let depth_of = |v: Var| node.vars.iter().position(|&w| w == v).unwrap();

    // Root-join intermediates: the root's children participate on their
    // shared prefix (full child trie, truncated depths).
    let mut child_tries: Vec<Option<Arc<FrozenTrie>>> =
        (0..plan.ghd.num_nodes()).map(|_| None).collect();
    let mut intermediates: Vec<PreparedRel> = Vec::new();
    for &c in &plan.ghd.children[root] {
        let child = results[c].as_ref().expect("children ran before the root");
        if child.attrs.is_empty() {
            continue; // satisfied boolean node: no constraint, no columns
        }
        let shared = &plan.nodes[c].shared_with_parent;
        debug_assert!(child.attrs.starts_with(shared), "planner checked the prefix");
        let trie =
            Arc::new(FrozenTrie::from_sorted(child.tuples.clone(), layout_policy(auto_layout)));
        child_tries[c] = Some(Arc::clone(&trie));
        if !shared.is_empty() {
            intermediates.push(PreparedRel::single(
                trie,
                None,
                shared.iter().map(|&v| depth_of(v)).collect(),
            ));
        }
    }

    // Extension schedule: BFS over non-root nodes with private columns.
    let mut emit_attrs: Vec<Var> = node.output.clone();
    let mut exts: Vec<NodeExt> = Vec::new();
    for t in plan.ghd.bfs_order() {
        if t == root {
            continue;
        }
        let child = results[t].as_ref().expect("bottom-up pass ran every node");
        let shared = &plan.nodes[t].shared_with_parent;
        if child.attrs.len() == shared.len() {
            continue; // pure semijoin, already applied bottom-up
        }
        // Shared values come from columns already in emit_attrs (the
        // parent's output was appended before BFS reaches this node).
        let shared_positions: Vec<usize> = shared
            .iter()
            .map(|v| emit_attrs.iter().position(|w| w == v).expect("BFS binds parents first"))
            .collect();
        let base = emit_attrs.len();
        emit_attrs.extend_from_slice(&child.attrs[shared.len()..]);
        let trie = match child_tries[t].take() {
            Some(t) => t,
            None => {
                Arc::new(FrozenTrie::from_sorted(child.tuples.clone(), layout_policy(auto_layout)))
            }
        };
        exts.push(NodeExt { trie, shared_positions, base });
    }

    let spec = node_spec(
        catalog,
        q,
        plan,
        root,
        intermediates,
        auto_layout,
        stats,
        format!("node {root} (pipelined)"),
    );
    let t0 = spec.obs.as_ref().map(|_| Instant::now());
    let root_out_positions: Vec<usize> = node.output.iter().map(|&v| depth_of(v)).collect();
    let proj_positions: Vec<usize> = q
        .projection()
        .iter()
        .map(|v| {
            emit_attrs.iter().position(|w| w == v).expect("projection covered by node outputs")
        })
        .collect();

    let sinks = run_join_parallel(
        &spec,
        rt,
        || PipeSink {
            out: TupleBuffer::new(proj_positions.len()),
            assembled: vec![0u32; emit_attrs.len()],
            row: vec![0u32; proj_positions.len()],
        },
        |sink, binding| {
            let PipeSink { out, assembled, row } = sink;
            for (j, &p) in root_out_positions.iter().enumerate() {
                assembled[j] = binding[p];
            }
            extend_nodes(&exts, 0, assembled, &mut |assembled| {
                for (j, &p) in proj_positions.iter().enumerate() {
                    row[j] = assembled[p];
                }
                out.push(row);
            });
        },
    );
    let mut out = TupleBuffer::new(proj_positions.len());
    for sink in sinks {
        out.append(&sink.out);
    }
    out.sort_dedup();
    if let (Some(o), Some(t0)) = (&spec.obs, t0) {
        o.stats.set_rows(out.len() as u64);
        o.stats.add_wall_ns(t0.elapsed().as_nanos() as u64);
    }
    out
}

/// Depth-first cross product over the extensions' private columns:
/// extension `i` looks up its shared prefix from the assembled row, then
/// enumerates its remaining trie levels into `assembled[base..]`.
fn extend_nodes(
    exts: &[NodeExt],
    i: usize,
    assembled: &mut Vec<u32>,
    emit: &mut dyn FnMut(&mut Vec<u32>),
) {
    if i == exts.len() {
        emit(assembled);
        return;
    }
    let ext = &exts[i];
    let trie = &ext.trie;
    let mut block = 0usize;
    for (lvl, &pos) in ext.shared_positions.iter().enumerate() {
        match trie.child(lvl, block, assembled[pos]) {
            Some(b) => block = b,
            // Bottom-up semijoins guarantee the prefix exists for bindings
            // that reach here; stay defensive anyway.
            None => return,
        }
    }
    walk_private(exts, i, trie, ext.shared_positions.len(), block, 0, assembled, emit);
}

#[allow(clippy::too_many_arguments)]
fn walk_private(
    exts: &[NodeExt],
    i: usize,
    trie: &FrozenTrie,
    level: usize,
    block: usize,
    offset: usize,
    assembled: &mut Vec<u32>,
    emit: &mut dyn FnMut(&mut Vec<u32>),
) {
    let leaf = level + 1 == trie.arity();
    let set = trie.set(level, block);
    let base = exts[i].base;
    for v in set.iter() {
        assembled[base + offset] = v;
        if leaf {
            extend_nodes(exts, i + 1, assembled, emit);
        } else {
            let child = trie.child(level, block, v).expect("iterated value present");
            walk_private(exts, i, trie, level + 1, child, offset + 1, assembled, emit);
        }
    }
}
