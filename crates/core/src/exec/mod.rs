//! Plan execution: the generic worst-case optimal join (paper Algorithm
//! 1) and the two-pass GHD driver (§II-C).

mod generic;
mod run;

pub(crate) use run::execute_plan;
