//! The generic worst-case optimal join (paper Algorithm 1) over tries.
//!
//! Attributes are processed in a fixed order. At each depth the
//! participating relations — those whose next trie level binds here —
//! contribute their current sets; unselected attributes iterate the
//! multiway intersection, while selected attributes do a single membership
//! probe (`O(1)` on bitsets, `O(log n)` on uint arrays — the §III-A
//! asymmetry).
//!
//! Two refinements from the paper's GHD setting:
//!
//! * **Early existence checks** ("early aggregation"): once every
//!   remaining attribute is non-output, the join switches from iteration
//!   to an existence probe, emitting each distinct output prefix once.
//! * Emission passes the bound prefix to a callback so callers decide
//!   whether to materialise, count, or stream (pipelining).
//!
//! [`run_join_parallel`] adds the multicore path: the first *unselected*
//! attribute's candidate set is partitioned into morsels, every remaining
//! level runs per-morsel on worker threads, and per-morsel sinks merge in
//! morsel order — so parallel output is bit-identical to [`run_join`].
//!
//! The inner loop is allocation-free: every multiway intersection runs
//! through the adaptive k-way driver ([`intersect_all_into`]) into a
//! per-depth, per-morsel [`IntersectScratch`], participant views are
//! assembled on the stack, and trailing existence checks use the
//! non-materializing [`intersects_all_refs`] kernel. All set probes are
//! [`SetRef`] views decoded in place from the [`FrozenTrie`] arenas.

use std::sync::Arc;
use std::time::Instant;

use eh_par::RuntimeConfig;
use eh_setops::{
    intersect_all_into, intersects_all_refs, overlay_merge_into, IntersectScratch, SetRef,
};
use eh_trie::{DeltaOverlay, FrozenTrie};

use crate::catalog::ShardOperand;
use crate::profile::JoinObs;

/// One relation participating in a join: a frozen trie plus the depth at
/// which each of its levels binds. `depths` may cover only a prefix of
/// the trie's levels — the unbound suffix is semantically projected away
/// (valid because trie levels are ordered by the global attribute order).
pub(crate) struct PreparedRel {
    /// The frozen trie (shared with the catalog cache and across
    /// workers). Every relation the join touches — catalog-served or an
    /// intermediate built mid-plan — is arena-backed; its per-block sets
    /// decode in place as [`SetRef`] views. For a sharded relation this
    /// aliases the first shard's trie and is only consulted for its
    /// arity (all shard tries of one access path share it).
    pub trie: Arc<FrozenTrie>,
    /// LSM-style novelty overlay: staged inserts and tombstones not yet
    /// compacted into the base arena. `None` (intermediates, predicates
    /// with no pending delta) keeps every read on the exact pre-overlay
    /// code path. `Some` routes this relation's set views through the
    /// merged view — the merged sets enter the multiway kernels as plain
    /// [`SetRef`] operands, so the intersection drivers are untouched.
    /// Overlays only apply to arity-2 catalog relations.
    pub overlay: Option<Arc<DeltaOverlay>>,
    /// Per-shard operands of a hash-partitioned relation (each shard's
    /// base trie plus its own overlay). Empty — the common case — means
    /// single-source: `trie`/`overlay` above serve every read on the
    /// exact unpartitioned code path. Non-empty routes this relation's
    /// set views through the cross-shard union: level 0 reads
    /// `union_root`, descents route to the shards that contain the bound
    /// value. Only arity-2 catalog relations shard.
    pub shards: Vec<ShardOperand>,
    /// The merged effective root domain across `shards` (catalog-cached).
    /// `Some` iff `shards` is non-empty.
    pub union_root: Option<Arc<Vec<u32>>>,
    /// `depths[level]` = join depth at which this trie level binds;
    /// strictly increasing.
    pub depths: Vec<usize>,
}

impl PreparedRel {
    /// A single-source relation — the unpartitioned (or one-shard) case.
    pub fn single(
        trie: Arc<FrozenTrie>,
        overlay: Option<Arc<DeltaOverlay>>,
        depths: Vec<usize>,
    ) -> PreparedRel {
        PreparedRel { trie, overlay, shards: Vec::new(), union_root: None, depths }
    }

    /// A hash-partitioned relation: two or more shard operands unioned
    /// under `union_root`.
    pub fn sharded(
        shards: Vec<ShardOperand>,
        union_root: Arc<Vec<u32>>,
        depths: Vec<usize>,
    ) -> PreparedRel {
        debug_assert!(shards.len() >= 2, "one shard must collapse to single()");
        let trie = Arc::clone(&shards[0].trie);
        PreparedRel { trie, overlay: None, shards, union_root: Some(union_root), depths }
    }
}

/// A compiled join over one attribute sequence.
pub(crate) struct JoinSpec {
    /// Number of attributes processed.
    pub num_vars: usize,
    /// Equality-selection constant per depth (`None` = iterate).
    pub sel: Vec<Option<u32>>,
    /// First depth at which every remaining attribute is non-output; the
    /// join emits `binding[..emit_depth]` and existence-checks the rest.
    pub emit_depth: usize,
    /// Participating relations.
    pub rels: Vec<PreparedRel>,
    /// Profiling hook: `None` (the normal path) records nothing — not
    /// even a clock read. `Some` makes every depth record its kernel
    /// dispatches, candidate counts, and probe counts; those counts are
    /// schedule-invariant because the parallel split materialises the
    /// split depth exactly the way the sequential step would.
    pub obs: Option<JoinObs>,
}

/// Where an overlay relation's current leaf set lives after a descent:
/// entirely in the base arena, entirely in the insert trie, or merged
/// into the cursor's buffer.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
enum LeafSrc {
    /// `trie.set(1, blocks[r][1])` — base block untouched by the delta.
    #[default]
    Base,
    /// `overlay.ins_leaf(blocks[r][1])` — value exists only in inserts.
    Ins,
    /// The merged `(base − del) ∪ ins` set in [`OverlayCursor::buf`].
    Buf,
}

/// Per-relation overlay cursor: which source holds the current leaf and
/// the reusable merge buffer for the mixed case. Cloned (buffer contents
/// included) on the per-morsel fork — the selected-prefix probe may have
/// populated it before the split.
#[derive(Clone, Default)]
struct OverlayCursor {
    leaf: LeafSrc,
    buf: Vec<u32>,
}

/// Where one *shard* of a partitioned relation holds its leaf set after
/// a root descent. [`LeafSrc`] plus the cross-shard possibility that the
/// bound root value has no presence in this shard at all.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
enum ShardLeaf {
    /// The bound value is absent from this shard's effective root.
    #[default]
    Dead,
    /// `shards[s].trie.set(1, blocks[s])`.
    Base,
    /// `shards[s].overlay.ins_leaf(blocks[s])`.
    Ins,
    /// The shard's own `(base − del) ∪ ins` merge in `bufs[s]`.
    Buf,
}

/// Per-relation cursor over a partitioned relation's shards. After a
/// root descent every shard is routed ([`ShardLeaf`]); subject-major
/// orders have at most one live shard per root value (subjects hash to
/// exactly one shard), object-major orders may have several — their leaf
/// sets are *subjects*, disjoint across shards, merged into `merged`.
/// Cloned with contents on the per-morsel fork, like [`OverlayCursor`].
#[derive(Clone, Default)]
struct MultiCursor {
    /// Per-shard leaf routing for the currently bound root value.
    srcs: Vec<ShardLeaf>,
    /// Per-shard current leaf block (meaningful for `Base`/`Ins`).
    blocks: Vec<usize>,
    /// Per-shard reusable overlay-merge buffers (the `Buf` route).
    bufs: Vec<Vec<u32>>,
    /// Cross-shard merged leaf set, used only when `many`.
    merged: Vec<u32>,
    /// The single live shard when `!many`.
    live: usize,
    /// More than one shard is live — reads go through `merged`.
    many: bool,
}

struct State {
    /// `blocks[rel][level]` = current trie block per relation level.
    blocks: Vec<Vec<usize>>,
    binding: Vec<u32>,
    /// One reusable intersection scratch per join depth, so the adaptive
    /// multiway driver performs zero heap allocation per extension once
    /// the buffers reach workload size. Depths never alias (the depth-`d`
    /// candidate list stays live while the search recurses into `d + 1`,
    /// which uses its own slot).
    scratch: Vec<IntersectScratch>,
    /// One overlay cursor per relation (unused for relations without an
    /// overlay).
    overlay: Vec<OverlayCursor>,
    /// One shard cursor per relation (empty vectors for single-source
    /// relations).
    multi: Vec<MultiCursor>,
}

/// The per-morsel fork in [`run_join_parallel`]: cursors and bindings are
/// copied, scratch buffers start fresh and empty — they are transient
/// kernel state, and each morsel must stay allocation-independent.
impl Clone for State {
    fn clone(&self) -> State {
        State {
            blocks: self.blocks.clone(),
            binding: self.binding.clone(),
            scratch: (0..self.scratch.len()).map(|_| IntersectScratch::new()).collect(),
            overlay: self.overlay.clone(),
            multi: self.multi.clone(),
        }
    }
}

impl State {
    fn fresh(spec: &JoinSpec) -> State {
        State {
            blocks: spec.rels.iter().map(|r| vec![0usize; r.trie.arity()]).collect(),
            binding: vec![0u32; spec.num_vars],
            scratch: (0..spec.num_vars).map(|_| IntersectScratch::new()).collect(),
            overlay: spec.rels.iter().map(|_| OverlayCursor::default()).collect(),
            multi: spec
                .rels
                .iter()
                .map(|rel| {
                    let n = rel.shards.len();
                    MultiCursor {
                        srcs: vec![ShardLeaf::Dead; n],
                        blocks: vec![0usize; n],
                        bufs: vec![Vec::new(); n],
                        ..MultiCursor::default()
                    }
                })
                .collect(),
        }
    }
}

/// The current set view of relation `r` at trie level `lvl` — the single
/// read point through which every probe, intersection, and candidate
/// materialisation sees a relation. Without an overlay this is exactly
/// the pre-overlay arena read; with one, level 0 is the cached merged
/// root and level 1 routes by the cursor's [`LeafSrc`]. A sharded
/// relation reads the cross-shard union root at level 0 and routes the
/// leaf through its [`MultiCursor`] — one live shard reads that shard
/// directly, several read the merged buffer.
fn rel_set<'a>(spec: &'a JoinSpec, st: &'a State, r: usize, lvl: usize) -> SetRef<'a> {
    let rel = &spec.rels[r];
    if let Some(union_root) = &rel.union_root {
        if lvl == 0 {
            return SetRef::Uint(union_root);
        }
        let cur = &st.multi[r];
        if cur.many {
            return SetRef::Uint(&cur.merged);
        }
        let s = cur.live;
        return match cur.srcs[s] {
            ShardLeaf::Dead => SetRef::Uint(&[]),
            ShardLeaf::Base => rel.shards[s].trie.set(1, cur.blocks[s]),
            ShardLeaf::Ins => rel.shards[s]
                .overlay
                .as_ref()
                .expect("Ins routes require an overlay")
                .ins_leaf(cur.blocks[s]),
            ShardLeaf::Buf => SetRef::Uint(&cur.bufs[s]),
        };
    }
    match &rel.overlay {
        None => rel.trie.set(lvl, st.blocks[r][lvl]),
        Some(ov) => {
            if lvl == 0 {
                SetRef::Uint(ov.root(&rel.trie))
            } else {
                match st.overlay[r].leaf {
                    LeafSrc::Base => rel.trie.set(1, st.blocks[r][1]),
                    LeafSrc::Ins => ov.ins_leaf(st.blocks[r][1]),
                    LeafSrc::Buf => SetRef::Uint(&st.overlay[r].buf),
                }
            }
        }
    }
}

/// Participants per depth: `(relation index, trie level)`.
fn participants(spec: &JoinSpec) -> Vec<Vec<(usize, usize)>> {
    let mut parts = vec![Vec::new(); spec.num_vars];
    for (r, rel) in spec.rels.iter().enumerate() {
        for (lvl, &d) in rel.depths.iter().enumerate() {
            debug_assert!(lvl == 0 || rel.depths[lvl - 1] < d, "depths must increase");
            parts[d].push((r, lvl));
        }
    }
    parts
}

/// Run the join, invoking `emit` with `binding[..emit_depth]` for every
/// output prefix whose extension to all attributes is non-empty.
pub(crate) fn run_join(spec: &JoinSpec, emit: &mut dyn FnMut(&[u32])) {
    debug_assert!(spec.emit_depth <= spec.num_vars);
    debug_assert_eq!(spec.sel.len(), spec.num_vars);
    let parts = participants(spec);
    // Every unselected depth must be covered by at least one relation,
    // else the iteration domain would be unbounded.
    debug_assert!((0..spec.num_vars).all(|d| spec.sel[d].is_some() || !parts[d].is_empty()));
    let mut st = State::fresh(spec);
    search(spec, &parts, &mut st, 0, emit);
}

/// Run the join across `rt.num_threads` workers, collecting emissions
/// into per-morsel sinks created by `init` and returning them **in morsel
/// order**, so concatenating the sinks reproduces [`run_join`]'s emission
/// sequence exactly.
///
/// Parallelism partitions the first unselected attribute (the outermost
/// iterated trie level — where EmptyHeaded parallelizes): the selected
/// prefix is probed once, the candidate set at the split depth is
/// materialised, and each morsel of candidates runs the remaining levels
/// on a cloned cursor state. Falls back to a single inline sink when the
/// configuration is serial or the join has no iterated attribute before
/// its emit depth.
pub(crate) fn run_join_parallel<T, I, E>(
    spec: &JoinSpec,
    rt: RuntimeConfig,
    init: I,
    emit: E,
) -> Vec<T>
where
    T: Send,
    I: Fn() -> T + Sync,
    E: Fn(&mut T, &[u32]) + Sync,
{
    let split = (0..spec.num_vars).find(|&d| spec.sel[d].is_none());
    let splittable = split.is_some_and(|s| s < spec.emit_depth);
    if !rt.is_parallel() || !splittable {
        let mut sink = init();
        run_join(spec, &mut |binding| emit(&mut sink, binding));
        return vec![sink];
    }
    let split = split.expect("checked by splittable");
    let parts = participants(spec);
    debug_assert!((0..spec.num_vars).all(|d| spec.sel[d].is_some() || !parts[d].is_empty()));

    // Probe the selected prefix once; a failed probe empties the join
    // (zero sinks merge to an empty, unsatisfiable result).
    let mut st = State::fresh(spec);
    for (d, here) in parts.iter().enumerate().take(split) {
        let c = spec.sel[d].expect("depths before the split carry selections");
        if !probe_selected(spec, &mut st, here, d, c) {
            return Vec::new();
        }
    }

    // Candidate values of the split attribute, in iteration order —
    // materialising exactly the domain `step` would iterate lazily (its
    // single-participant fast path iterates the set directly; per-value
    // descent happens per morsel below). Profile recording here mirrors
    // `step`'s two branches exactly, which is what keeps the profile's
    // counts invariant across thread counts.
    let here = &parts[split];
    let candidates: Vec<u32> = if here.len() == 1 {
        let (r, lvl) = here[0];
        let set = rel_set(spec, &st, r, lvl);
        if let Some(o) = &spec.obs {
            o.stats.note_single(split, set.len() as u64, 0);
        }
        set.to_vec()
    } else {
        let mut scratch = IntersectScratch::new();
        let start = spec.obs.as_ref().map(|_| Instant::now());
        with_participant_sets(spec, &st, here, |sets| intersect_all_into(sets, &mut scratch));
        if let Some(o) = &spec.obs {
            let ns = start.map_or(0, |s| s.elapsed().as_nanos() as u64);
            o.stats.note_multiway(split, scratch.last_kernel(), scratch.values().len() as u64, ns);
        }
        scratch.values().to_vec()
    };
    if candidates.is_empty() {
        return Vec::new();
    }

    if let Some(o) = &spec.obs {
        o.stats.note_morsels(eh_par::num_morsels(candidates.len(), rt.morsel_size) as u64);
    }
    let observer = spec.obs.as_ref().map(|o| &*o.tasks);
    let base = st;
    eh_par::run_morsels_observed(&rt, candidates.len(), observer, |_, range| {
        let mut sink = init();
        let mut st = base.clone();
        {
            let mut f = |binding: &[u32]| emit(&mut sink, binding);
            for &v in &candidates[range] {
                descend(spec, &mut st, here, v);
                st.binding[split] = v;
                search(spec, &parts, &mut st, split + 1, &mut f);
            }
        }
        sink
    })
}

fn search(
    spec: &JoinSpec,
    parts: &[Vec<(usize, usize)>],
    st: &mut State,
    depth: usize,
    emit: &mut dyn FnMut(&[u32]),
) {
    if depth == spec.emit_depth {
        if exists(spec, parts, st, depth) {
            emit(&st.binding[..depth]);
        }
        return;
    }
    step(spec, parts, st, depth, &mut |spec, st| {
        search(spec, parts, st, depth + 1, emit);
        true
    });
}

fn exists(spec: &JoinSpec, parts: &[Vec<(usize, usize)>], st: &mut State, depth: usize) -> bool {
    if depth == spec.num_vars {
        return true;
    }
    // Final-depth fast path: with no deeper level to descend into, a
    // witness is just "is the participants' intersection non-empty" —
    // answered by the non-materializing EXISTS kernel instead of
    // iterating a materialised candidate list.
    if depth + 1 == spec.num_vars && spec.sel[depth].is_none() {
        let here = &parts[depth];
        debug_assert!(!here.is_empty(), "unselected attribute with no participants");
        if let Some(o) = &spec.obs {
            o.stats.note_exists(depth);
        }
        if here.len() == 1 {
            let (r, lvl) = here[0];
            return !rel_set(spec, st, r, lvl).is_empty();
        }
        return with_participant_sets(spec, st, here, intersects_all_refs);
    }
    let mut found = false;
    step(spec, parts, st, depth, &mut |spec, st| {
        found = exists(spec, parts, st, depth + 1);
        !found // stop iterating as soon as a witness exists
    });
    found
}

/// Bind attribute `depth` every admissible way, invoking `then` per value
/// until it returns `false` (early exit for existence probes).
fn step(
    spec: &JoinSpec,
    parts: &[Vec<(usize, usize)>],
    st: &mut State,
    depth: usize,
    then: &mut dyn FnMut(&JoinSpec, &mut State) -> bool,
) {
    let here = &parts[depth];
    match spec.sel[depth] {
        Some(c) => {
            if probe_selected(spec, st, here, depth, c) {
                then(spec, st);
            }
        }
        None => {
            debug_assert!(!here.is_empty(), "unselected attribute with no participants");
            if here.len() == 1 {
                let (r, lvl) = here[0];
                if !spec.rels[r].shards.is_empty() {
                    step_single_multi(spec, st, depth, r, lvl, then);
                    return;
                }
                if spec.rels[r].overlay.is_some() {
                    step_single_overlay(spec, st, depth, r, lvl, then);
                    return;
                }
                // Fast path: iterate the single participant's set directly.
                let trie = Arc::clone(&spec.rels[r].trie);
                let block = st.blocks[r][lvl];
                if let Some(o) = &spec.obs {
                    o.stats.note_single(depth, trie.set(lvl, block).len() as u64, 0);
                }
                for v in trie.set(lvl, block).iter() {
                    if lvl + 1 < trie.arity() {
                        st.blocks[r][lvl + 1] =
                            trie.child(lvl, block, v).expect("iterated value must be present");
                    }
                    st.binding[depth] = v;
                    if !then(spec, st) {
                        return;
                    }
                }
            } else {
                // Multiway intersection into this depth's reusable
                // scratch: the buffer is taken out of the state for the
                // duration of the iteration (recursion below uses deeper
                // slots), then restored — zero allocation per extension
                // in the steady state.
                let mut scratch = std::mem::take(&mut st.scratch[depth]);
                let start = spec.obs.as_ref().map(|_| Instant::now());
                with_participant_sets(spec, st, here, |sets| {
                    intersect_all_into(sets, &mut scratch);
                });
                if let Some(o) = &spec.obs {
                    let ns = start.map_or(0, |s| s.elapsed().as_nanos() as u64);
                    o.stats.note_multiway(
                        depth,
                        scratch.last_kernel(),
                        scratch.values().len() as u64,
                        ns,
                    );
                }
                for idx in 0..scratch.values().len() {
                    let v = scratch.values()[idx];
                    descend(spec, st, here, v);
                    st.binding[depth] = v;
                    if !then(spec, st) {
                        break;
                    }
                }
                st.scratch[depth] = scratch;
            }
        }
    }
}

/// The single-participant unselected path for a relation carrying an
/// overlay: iterate its merged view at `depth`, descending per value at
/// level 0. Mirrors the base-arena fast path above — [`JoinObs`] records
/// the same `note_single` shape, so profiles stay schedule-invariant.
fn step_single_overlay(
    spec: &JoinSpec,
    st: &mut State,
    depth: usize,
    r: usize,
    lvl: usize,
    then: &mut dyn FnMut(&JoinSpec, &mut State) -> bool,
) {
    let rel = &spec.rels[r];
    let ov = rel.overlay.as_ref().expect("caller checked the overlay");
    if lvl == 0 {
        // The cached merged root borrows `spec`-owned data, so it stays
        // valid across the mutating `then` callbacks.
        let root = ov.root(&rel.trie);
        if let Some(o) = &spec.obs {
            o.stats.note_single(depth, root.len() as u64, 0);
        }
        for &v in root {
            descend(spec, st, &[(r, 0)], v);
            st.binding[depth] = v;
            if !then(spec, st) {
                return;
            }
        }
        return;
    }
    // Leaf level: nothing deeper to descend into — just iterate whichever
    // source the cursor routed to.
    match st.overlay[r].leaf {
        LeafSrc::Buf => {
            // The merged buffer lives in `st`, which `then` mutates; take
            // it out for the iteration (the same discipline as the
            // per-depth scratch) and restore it afterwards.
            let buf = std::mem::take(&mut st.overlay[r].buf);
            if let Some(o) = &spec.obs {
                o.stats.note_single(depth, buf.len() as u64, 0);
            }
            for &v in &buf {
                st.binding[depth] = v;
                if !then(spec, st) {
                    break;
                }
            }
            st.overlay[r].buf = buf;
        }
        src => {
            let block = st.blocks[r][1];
            let set = match src {
                LeafSrc::Base => rel.trie.set(1, block),
                _ => ov.ins_leaf(block),
            };
            if let Some(o) = &spec.obs {
                o.stats.note_single(depth, set.len() as u64, 0);
            }
            for v in set.iter() {
                st.binding[depth] = v;
                if !then(spec, st) {
                    return;
                }
            }
        }
    }
}

/// The single-participant unselected path for a partitioned relation:
/// iterate its union root (descending the shard cursors per value) at
/// level 0, or whichever source the cursor routed the leaf to. Mirrors
/// the base-arena fast path — [`JoinObs`] records the same `note_single`
/// shape, so profiles stay invariant across partition counts too.
fn step_single_multi(
    spec: &JoinSpec,
    st: &mut State,
    depth: usize,
    r: usize,
    lvl: usize,
    then: &mut dyn FnMut(&JoinSpec, &mut State) -> bool,
) {
    let rel = &spec.rels[r];
    if lvl == 0 {
        // The union root is Arc-shared with the catalog cache, so clone
        // the handle rather than borrowing across the mutating `then`.
        let root = Arc::clone(rel.union_root.as_ref().expect("sharded relations carry a root"));
        if let Some(o) = &spec.obs {
            o.stats.note_single(depth, root.len() as u64, 0);
        }
        for &v in root.iter() {
            descend(spec, st, &[(r, 0)], v);
            st.binding[depth] = v;
            if !then(spec, st) {
                return;
            }
        }
        return;
    }
    // Leaf level: iterate the routed source. Buffers living in `st` are
    // taken out for the iteration (the scratch discipline) and restored.
    let cur = &st.multi[r];
    let (many, live) = (cur.many, cur.live);
    if many {
        let buf = std::mem::take(&mut st.multi[r].merged);
        if let Some(o) = &spec.obs {
            o.stats.note_single(depth, buf.len() as u64, 0);
        }
        for &v in &buf {
            st.binding[depth] = v;
            if !then(spec, st) {
                break;
            }
        }
        st.multi[r].merged = buf;
        return;
    }
    match st.multi[r].srcs[live] {
        ShardLeaf::Dead => {}
        ShardLeaf::Buf => {
            let buf = std::mem::take(&mut st.multi[r].bufs[live]);
            if let Some(o) = &spec.obs {
                o.stats.note_single(depth, buf.len() as u64, 0);
            }
            for &v in &buf {
                st.binding[depth] = v;
                if !then(spec, st) {
                    break;
                }
            }
            st.multi[r].bufs[live] = buf;
        }
        src => {
            let block = st.multi[r].blocks[live];
            let op = &rel.shards[live];
            let set = match src {
                ShardLeaf::Base => op.trie.set(1, block),
                _ => op.overlay.as_ref().expect("Ins routes require an overlay").ins_leaf(block),
            };
            if let Some(o) = &spec.obs {
                o.stats.note_single(depth, set.len() as u64, 0);
            }
            for v in set.iter() {
                st.binding[depth] = v;
                if !then(spec, st) {
                    return;
                }
            }
        }
    }
}

/// Probe selection value `c` against every participant at `depth`; on
/// success descend all cursors and bind it. Shared by the sequential
/// [`step`] and the parallel prefix probe so the two cannot drift — the
/// bit-identical guarantee of [`run_join_parallel`] depends on both
/// paths applying exactly this rule.
fn probe_selected(
    spec: &JoinSpec,
    st: &mut State,
    here: &[(usize, usize)],
    depth: usize,
    c: u32,
) -> bool {
    if let Some(o) = &spec.obs {
        o.stats.note_selected(depth);
    }
    for &(r, lvl) in here {
        if !rel_set(spec, st, r, lvl).contains(c) {
            return false;
        }
    }
    descend(spec, st, here, c);
    st.binding[depth] = c;
    true
}

/// Run `f` over every participant's current set view, assembled on the
/// stack for typical arities — the views borrow the tries owned by
/// `spec`, so they are independent of later `st` mutation. Shared by
/// [`step`], [`exists`], and the parallel candidate materialisation.
fn with_participant_sets<R>(
    spec: &JoinSpec,
    st: &State,
    here: &[(usize, usize)],
    f: impl FnOnce(&[SetRef<'_>]) -> R,
) -> R {
    // A planner bug that produces an unselected attribute with no
    // participants must fail loudly (as the pre-scratch code's `expect`
    // did), not as a silently empty result in release builds.
    assert!(!here.is_empty(), "unselected attribute with no participants");
    const INLINE: usize = 8;
    if here.len() <= INLINE {
        let mut table: [SetRef<'_>; INLINE] = [SetRef::Uint(&[]); INLINE];
        for (slot, &(r, lvl)) in table.iter_mut().zip(here) {
            *slot = rel_set(spec, st, r, lvl);
        }
        f(&table[..here.len()])
    } else {
        let sets: Vec<SetRef<'_>> =
            here.iter().map(|&(r, lvl)| rel_set(spec, st, r, lvl)).collect();
        f(&sets)
    }
}

/// Move every participant's cursor to the child block of `v` (which is
/// known to be present in each participant's current set).
fn descend(spec: &JoinSpec, st: &mut State, here: &[(usize, usize)], v: u32) {
    for &(r, lvl) in here {
        let rel = &spec.rels[r];
        if !rel.shards.is_empty() {
            // Prefix-only shard participants never read a leaf, so only
            // the root→leaf move routes the shards.
            if lvl == 0 && rel.depths.len() > 1 {
                descend_multi(rel, st, r, v);
            }
            continue;
        }
        match &rel.overlay {
            None => {
                if lvl + 1 < rel.trie.arity() {
                    st.blocks[r][lvl + 1] = rel
                        .trie
                        .child(lvl, st.blocks[r][lvl], v)
                        .expect("descend value must be present in the set");
                }
            }
            Some(ov) => {
                // Leaf-level participants (lvl 1) have nothing deeper to
                // descend into, and a prefix-only participant never reads
                // its leaf level — only the root→leaf move merges.
                if lvl == 0 && lvl + 1 < rel.depths.len() {
                    descend_overlay(rel, ov, st, r, v);
                }
            }
        }
    }
}

/// Overlay-aware descent into the leaf level of relation `r`: route the
/// cursor to the base block, the insert block, or — when the value has
/// presence in both (or a tombstone to subtract) — merge
/// `(base − del) ∪ ins` into the cursor's reusable buffer.
fn descend_overlay(rel: &PreparedRel, ov: &DeltaOverlay, st: &mut State, r: usize, v: u32) {
    let base_block =
        if rel.trie.num_tuples() == 0 { None } else { rel.trie.child(0, st.blocks[r][0], v) };
    let ins_block = ov.ins_child_block(v);
    let del = ov.del_child(v);
    match (base_block, ins_block) {
        (Some(bb), None) if del.is_none() => {
            st.overlay[r].leaf = LeafSrc::Base;
            st.blocks[r][1] = bb;
        }
        (None, Some(ib)) => {
            st.overlay[r].leaf = LeafSrc::Ins;
            st.blocks[r][1] = ib;
        }
        (bb, ib) => {
            debug_assert!(
                bb.is_some(),
                "descend value must be present in the merged set, so absent \
                 from inserts means present in the base"
            );
            let base_set = bb.map(|b| rel.trie.set(1, b));
            let ins_set = ib.map(|b| ov.ins_leaf(b));
            let cur = &mut st.overlay[r];
            cur.buf.clear();
            overlay_merge_into(base_set, del, ins_set, &mut cur.buf);
            cur.leaf = LeafSrc::Buf;
        }
    }
}

/// Shard-aware descent into the leaf level of a partitioned relation:
/// route every shard's cursor for root value `v` (each shard applies the
/// same base/insert/merge logic as [`descend_overlay`], with the extra
/// `Dead` outcome for shards that do not contain `v`). One live shard
/// serves its leaf directly; several merge into the cursor's cross-shard
/// buffer — those leaf values are subjects, disjoint across shards, so
/// the merge is concatenate + sort.
fn descend_multi(rel: &PreparedRel, st: &mut State, r: usize, v: u32) {
    let MultiCursor { srcs, blocks, bufs, merged, live, many } = &mut st.multi[r];
    let mut live_count = 0usize;
    for (s, op) in rel.shards.iter().enumerate() {
        let base_block = if op.trie.num_tuples() == 0 { None } else { op.trie.child(0, 0, v) };
        srcs[s] = match &op.overlay {
            None => match base_block {
                Some(bb) => {
                    blocks[s] = bb;
                    ShardLeaf::Base
                }
                None => ShardLeaf::Dead,
            },
            Some(ov) => {
                let ins_block = ov.ins_child_block(v);
                let del = ov.del_child(v);
                match (base_block, ins_block) {
                    (None, None) => ShardLeaf::Dead,
                    (Some(bb), None) if del.is_none() => {
                        blocks[s] = bb;
                        ShardLeaf::Base
                    }
                    (None, Some(ib)) => {
                        blocks[s] = ib;
                        ShardLeaf::Ins
                    }
                    (bb, ib) => {
                        let base_set = bb.map(|b| op.trie.set(1, b));
                        let ins_set = ib.map(|b| ov.ins_leaf(b));
                        bufs[s].clear();
                        overlay_merge_into(base_set, del, ins_set, &mut bufs[s]);
                        // Unlike the single-source case, `v`'s presence in
                        // the *union* root says nothing about this shard —
                        // a fully tombstoned value merges to nothing.
                        if bufs[s].is_empty() {
                            ShardLeaf::Dead
                        } else {
                            ShardLeaf::Buf
                        }
                    }
                }
            }
        };
        if srcs[s] != ShardLeaf::Dead {
            live_count += 1;
            *live = s;
        }
    }
    debug_assert!(live_count > 0, "descend value must be live in at least one shard");
    *many = live_count != 1;
    if live_count > 1 {
        merged.clear();
        for (s, op) in rel.shards.iter().enumerate() {
            match srcs[s] {
                ShardLeaf::Dead => {}
                ShardLeaf::Base => merged.extend(op.trie.set(1, blocks[s]).iter()),
                ShardLeaf::Ins => {
                    let ov = op.overlay.as_ref().expect("Ins routes require an overlay");
                    merged.extend(ov.ins_leaf(blocks[s]).iter());
                }
                ShardLeaf::Buf => merged.extend_from_slice(&bufs[s]),
            }
        }
        merged.sort_unstable();
        merged.dedup();
    } else if live_count == 0 {
        // Release-safe fallback for the impossible case: serve empty.
        merged.clear();
        *many = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eh_trie::{LayoutPolicy, TupleBuffer};

    fn trie_of(pairs: &[(u32, u32)]) -> Arc<FrozenTrie> {
        Arc::new(FrozenTrie::build(TupleBuffer::from_pairs(pairs), LayoutPolicy::Auto))
    }

    fn collect(spec: &JoinSpec) -> Vec<Vec<u32>> {
        let mut out = Vec::new();
        run_join(spec, &mut |b| out.push(b.to_vec()));
        // Every join in this module must also be parallel-safe: the
        // morsel-merged emission sequence is bit-identical to sequential.
        for threads in [2, 4] {
            let rt = RuntimeConfig::with_threads(threads).with_morsel_size(1);
            let sinks = run_join_parallel(spec, rt, Vec::new, |sink: &mut Vec<Vec<u32>>, b| {
                sink.push(b.to_vec())
            });
            let merged: Vec<Vec<u32>> = sinks.into_iter().flatten().collect();
            assert_eq!(merged, out, "parallel run diverged at {threads} threads");
        }
        out
    }

    #[test]
    fn triangle_join() {
        // R(x,y), S(y,z), T(x,z) with edges forming two triangles.
        let r = trie_of(&[(0, 1), (0, 2), (3, 1)]);
        let s = trie_of(&[(1, 2), (2, 4)]);
        let t = trie_of(&[(0, 2), (0, 4), (3, 9)]);
        // Order [x, y, z]: R binds (0,1), S binds (1,2), T binds (0,2).
        let spec = JoinSpec {
            num_vars: 3,
            sel: vec![None, None, None],
            emit_depth: 3,
            obs: None,
            rels: vec![
                PreparedRel::single(r, None, vec![0, 1]),
                PreparedRel::single(s, None, vec![1, 2]),
                PreparedRel::single(t, None, vec![0, 2]),
            ],
        };
        // Triangles: (x=0,y=1,z=2) and (x=0,y=2,z=4).
        assert_eq!(collect(&spec), vec![vec![0, 1, 2], vec![0, 2, 4]]);
    }

    #[test]
    fn selection_probe() {
        let r = trie_of(&[(1, 10), (1, 11), (2, 12)]);
        // Order [a(sel=1), x]: trie object-major would be needed in real
        // plans; here the trie is already [a, x]-shaped.
        let spec = JoinSpec {
            num_vars: 2,
            sel: vec![Some(1), None],
            emit_depth: 2,
            obs: None,
            rels: vec![PreparedRel::single(r, None, vec![0, 1])],
        };
        assert_eq!(collect(&spec), vec![vec![1, 10], vec![1, 11]]);
    }

    #[test]
    fn failed_selection_prunes() {
        let r = trie_of(&[(1, 10)]);
        let spec = JoinSpec {
            num_vars: 2,
            sel: vec![Some(9), None],
            emit_depth: 2,
            obs: None,
            rels: vec![PreparedRel::single(r, None, vec![0, 1])],
        };
        assert!(collect(&spec).is_empty());
    }

    #[test]
    fn existence_check_dedups_trailing_nonoutput() {
        // R(x, y) with y non-output: emit each x once despite many y's.
        let r = trie_of(&[(5, 1), (5, 2), (5, 3), (6, 9)]);
        let spec = JoinSpec {
            num_vars: 2,
            sel: vec![None, None],
            emit_depth: 1,
            obs: None,
            rels: vec![PreparedRel::single(r, None, vec![0, 1])],
        };
        assert_eq!(collect(&spec), vec![vec![5], vec![6]]);
    }

    #[test]
    fn semijoin_via_prefix_participation() {
        // Full relation R(x,y) joined with a unary filter F(x) given as a
        // trie participating only at depth 0.
        let r = trie_of(&[(1, 10), (2, 20), (3, 30)]);
        let mut f = TupleBuffer::new(1);
        f.push(&[2]);
        f.push(&[3]);
        let f = Arc::new(FrozenTrie::build(f, LayoutPolicy::Auto));
        let spec = JoinSpec {
            num_vars: 2,
            sel: vec![None, None],
            emit_depth: 2,
            obs: None,
            rels: vec![
                PreparedRel::single(r, None, vec![0, 1]),
                PreparedRel::single(f, None, vec![0]),
            ],
        };
        assert_eq!(collect(&spec), vec![vec![2, 20], vec![3, 30]]);
    }

    #[test]
    fn prefix_only_participation_projects_suffix() {
        // A binary trie participating only at depth 0 acts as π_x(R).
        let r = trie_of(&[(1, 10), (1, 11), (4, 12)]);
        let spec = JoinSpec {
            num_vars: 1,
            sel: vec![None],
            emit_depth: 1,
            obs: None,
            rels: vec![PreparedRel::single(r, None, vec![0])],
        };
        assert_eq!(collect(&spec), vec![vec![1], vec![4]]);
    }

    #[test]
    fn empty_relation_yields_nothing() {
        let e = Arc::new(FrozenTrie::build(TupleBuffer::new(2), LayoutPolicy::Auto));
        let r = trie_of(&[(1, 2)]);
        let spec = JoinSpec {
            num_vars: 2,
            sel: vec![None, None],
            emit_depth: 2,
            obs: None,
            rels: vec![
                PreparedRel::single(r, None, vec![0, 1]),
                PreparedRel::single(e, None, vec![0, 1]),
            ],
        };
        assert!(collect(&spec).is_empty());
    }

    #[test]
    fn overlay_operand_serves_merged_view() {
        // Base R = {(1,10),(1,11),(2,20),(3,30)}; delta stages +(1,12),
        // +(4,40) and tombstones (1,10), (2,20). Logical view:
        // {(1,11),(1,12),(3,30),(4,40)} — exercising the Buf (subject 1),
        // Base (subject 3), and Ins (subject 4) leaf routes, plus the
        // fully tombstoned subject 2 vanishing from the root.
        let base = trie_of(&[(1, 10), (1, 11), (2, 20), (3, 30)]);
        let ov = Arc::new(DeltaOverlay::from_pairs(&[(1, 12), (4, 40)], &[(1, 10), (2, 20)]));
        let spec = JoinSpec {
            num_vars: 2,
            sel: vec![None, None],
            emit_depth: 2,
            obs: None,
            rels: vec![PreparedRel::single(base, Some(ov), vec![0, 1])],
        };
        assert_eq!(collect(&spec), vec![vec![1, 11], vec![1, 12], vec![3, 30], vec![4, 40]]);
    }

    #[test]
    fn overlay_participates_in_multiway_intersection() {
        // Overlaid R joined with a plain S: the merged sets enter the
        // intersection kernels as ordinary operands at both depths.
        let r = trie_of(&[(1, 10), (2, 20)]);
        // Logical R = {(2,20),(2,21),(5,50)}.
        let ov = Arc::new(DeltaOverlay::from_pairs(&[(2, 21), (5, 50)], &[(1, 10)]));
        let s = trie_of(&[(2, 21), (2, 22), (5, 50), (6, 60)]);
        let spec = JoinSpec {
            num_vars: 2,
            sel: vec![None, None],
            emit_depth: 2,
            obs: None,
            rels: vec![
                PreparedRel::single(r, Some(ov), vec![0, 1]),
                PreparedRel::single(s, None, vec![0, 1]),
            ],
        };
        assert_eq!(collect(&spec), vec![vec![2, 21], vec![5, 50]]);
    }

    #[test]
    fn selection_probes_route_through_the_overlay() {
        let r = trie_of(&[(1, 10), (2, 20)]);
        // Logical R = {(1,12),(2,20)}.
        let ov = Arc::new(DeltaOverlay::from_pairs(&[(1, 12)], &[(1, 10)]));
        let mk = |sel| JoinSpec {
            num_vars: 2,
            sel,
            emit_depth: 2,
            obs: None,
            rels: vec![PreparedRel::single(Arc::clone(&r), Some(Arc::clone(&ov)), vec![0, 1])],
        };
        // A tombstoned pair must miss, the staged insert must hit, and a
        // base-resident pair still hits.
        assert!(collect(&mk(vec![Some(1), Some(10)])).is_empty());
        assert_eq!(collect(&mk(vec![Some(1), Some(12)])), vec![vec![1, 12]]);
        assert_eq!(collect(&mk(vec![Some(2), Some(20)])), vec![vec![2, 20]]);
    }

    #[test]
    fn overlay_existence_check_on_trailing_nonoutput() {
        // Emit x once per surviving subject: tombstoning subject 6's only
        // pair removes it, staged subject 7 appears.
        let r = trie_of(&[(5, 1), (5, 2), (6, 3)]);
        let ov = Arc::new(DeltaOverlay::from_pairs(&[(7, 9)], &[(6, 3)]));
        let spec = JoinSpec {
            num_vars: 2,
            sel: vec![None, None],
            emit_depth: 1,
            obs: None,
            rels: vec![PreparedRel::single(r, Some(ov), vec![0, 1])],
        };
        assert_eq!(collect(&spec), vec![vec![5], vec![7]]);
    }

    #[test]
    fn overlay_over_empty_base_serves_pure_inserts() {
        // A predicate born from staged inserts: empty base trie, all
        // novelty in the overlay.
        let e = Arc::new(FrozenTrie::build(TupleBuffer::new(2), LayoutPolicy::Auto));
        let ov = Arc::new(DeltaOverlay::from_pairs(&[(1, 10), (2, 20)], &[]));
        let spec = JoinSpec {
            num_vars: 2,
            sel: vec![None, None],
            emit_depth: 2,
            obs: None,
            rels: vec![PreparedRel::single(e, Some(ov), vec![0, 1])],
        };
        assert_eq!(collect(&spec), vec![vec![1, 10], vec![2, 20]]);
    }

    #[test]
    fn overlay_prefix_participation_filters_without_leaf_merge() {
        // An overlaid relation participating only at depth 0 (semijoin
        // filter): the merged root applies, and no leaf merge runs.
        let r = trie_of(&[(1, 10), (2, 20), (3, 30)]);
        let f_base = trie_of(&[(2, 1), (9, 1)]);
        // Filter root = ({2, 9} − {9}) ∪ {3} = {2, 3}.
        let f_ov = Arc::new(DeltaOverlay::from_pairs(&[(3, 1)], &[(9, 1)]));
        let spec = JoinSpec {
            num_vars: 2,
            sel: vec![None, None],
            emit_depth: 2,
            obs: None,
            rels: vec![
                PreparedRel::single(r, None, vec![0, 1]),
                PreparedRel::single(f_base, Some(f_ov), vec![0]),
            ],
        };
        assert_eq!(collect(&spec), vec![vec![2, 20], vec![3, 30]]);
    }

    #[test]
    fn zero_emit_depth_is_boolean() {
        // All attributes non-output: emits the empty prefix exactly once
        // when the join is non-empty.
        let r = trie_of(&[(1, 2), (3, 4)]);
        let spec = JoinSpec {
            num_vars: 2,
            sel: vec![None, None],
            emit_depth: 0,
            obs: None,
            rels: vec![PreparedRel::single(r, None, vec![0, 1])],
        };
        let out = collect(&spec);
        assert_eq!(out, vec![Vec::<u32>::new()]);
    }
}
