//! Shared ownership of the triple store.
//!
//! The paper's storage model is built once and queried forever, and the
//! engine used to inherit that shape: `Catalog` borrowed an immutable
//! `&TripleStore`. Live updates need the opposite — one store, many
//! concurrent readers, an occasional writer — so the engine now holds a
//! [`SharedStore`]: a cloneable `Arc<RwLock<TripleStore>>` handle.
//!
//! Reads take the lock briefly (parse a query's constants, copy a
//! predicate's pairs into a trie build) and never across a join — joins
//! run against immutable `Arc<Trie>` snapshots from the
//! [`Catalog`](crate::Catalog), so a writer is never blocked by a
//! long-running query, only by short index builds. Writes go through
//! [`Engine::update`](crate::Engine::update), which is also what keeps
//! the catalog's tries and epoch in sync; the raw write lock is therefore
//! not exposed outside the crate.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

use eh_rdf::{Triple, TripleStore};

/// A cloneable, thread-safe handle to one [`TripleStore`].
///
/// Clones share the same underlying store: data added through one
/// handle's engine is visible to every other clone. The handle carries a
/// monotonically increasing [`version`](SharedStore::version), bumped on
/// every mutation, which lets *every* catalog over this store — not just
/// the one whose engine applied the update — notice that its tries are
/// out of date and retire them (see `Catalog`'s store-version sync).
#[derive(Clone, Debug, Default)]
pub struct SharedStore {
    inner: Arc<RwLock<TripleStore>>,
    version: Arc<AtomicU64>,
}

impl SharedStore {
    /// Wrap an existing (committed) store.
    pub fn new(store: TripleStore) -> SharedStore {
        SharedStore { inner: Arc::new(RwLock::new(store)), version: Arc::default() }
    }

    /// Bulk-build a committed store and wrap it.
    pub fn from_triples(triples: impl IntoIterator<Item = Triple>) -> SharedStore {
        SharedStore::new(TripleStore::from_triples(triples))
    }

    /// Read access. Hold the guard only for short, non-reentrant
    /// operations (term resolution, pair copies) — never across a call
    /// that takes the lock again on the same thread.
    pub fn read(&self) -> RwLockReadGuard<'_, TripleStore> {
        self.inner.read().expect("store lock poisoned")
    }

    /// Write access, crate-internal: all mutation flows through
    /// [`Engine::update`](crate::Engine::update) so trie invalidation and
    /// the catalog epoch can't be skipped.
    pub(crate) fn write(&self) -> RwLockWriteGuard<'_, TripleStore> {
        self.inner.write().expect("store lock poisoned")
    }

    /// The current mutation version. Catalogs compare this against the
    /// version they last synchronised with; a mismatch means another
    /// engine's update changed the store under them.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Record one mutation; returns the new version. Called by
    /// [`Engine::update`](crate::Engine::update) while the write lock is
    /// still held, so any reader that can see the new data can also see
    /// the new version.
    pub(crate) fn bump_version(&self) -> u64 {
        self.version.fetch_add(1, Ordering::AcqRel) + 1
    }
}

impl From<TripleStore> for SharedStore {
    fn from(store: TripleStore) -> SharedStore {
        SharedStore::new(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eh_rdf::Term;

    #[test]
    fn clones_share_one_store() {
        let a = SharedStore::from_triples(vec![Triple::new(
            Term::iri("s"),
            Term::iri("p"),
            Term::iri("o"),
        )]);
        let b = a.clone();
        b.write().add_triples(vec![Triple::new(Term::iri("s2"), Term::iri("p"), Term::iri("o"))]);
        assert_eq!(a.read().num_triples(), 2);
    }
}
