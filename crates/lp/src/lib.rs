//! # eh-lp
//!
//! A small linear-programming substrate for the AGM bound (Atserias–Grohe–
//! Marx) and fractional hypertree width computations in Aberger et al.
//! (ICDE 2016), §II-B and §II-C.
//!
//! The paper's planner needs, per candidate GHD node, the optimum of the
//! *fractional edge cover* program
//!
//! ```text
//!   minimize   Σ_e  w_e · x_e
//!   subject to Σ_{e ∋ v} x_e ≥ 1   for every vertex v
//!              x_e ≥ 0
//! ```
//!
//! with `w_e = 1` (the fractional edge-cover *number*, e.g. `3/2` for the
//! triangle — the width the paper quotes for LUBM query 2) or
//! `w_e = log₂ |R_e|` (the cardinality-aware AGM exponent used when pushing
//! selections across GHD nodes, §III-B2 step 1).
//!
//! The solver is a dense two-phase primal simplex with Bland's rule,
//! generic over a [`Scalar`] so the same code runs exactly over
//! [`Rational`] (unit weights; used in tests and width computations) and
//! approximately over `f64` (log-size weights).
//!
//! ```
//! use eh_lp::{fractional_edge_cover_exact, Rational};
//!
//! // Triangle query R(x,y) ⋈ S(y,z) ⋈ T(z,x): fhw = 3/2.
//! let edges = vec![vec![0, 1], vec![1, 2], vec![2, 0]];
//! let (x, value) = fractional_edge_cover_exact(3, &edges).unwrap();
//! assert_eq!(value, Rational::new(3, 2));
//! assert!(x.iter().all(|xi| *xi == Rational::new(1, 2)));
//! ```

mod cover;
mod rational;
mod scalar;
mod simplex;

pub use cover::{agm_bound, fractional_edge_cover, fractional_edge_cover_exact};
pub use rational::Rational;
pub use scalar::Scalar;
pub use simplex::{solve, LinearProgram, LpOutcome};

#[cfg(test)]
mod proptests;
