//! Numeric abstraction letting the simplex solver run exactly over
//! [`Rational`] or approximately over `f64`.

use crate::rational::Rational;

/// The field operations the simplex tableau needs.
///
/// `is_zero`/sign predicates carry the tolerance policy: exact for
/// rationals, epsilon-based for floats, so the same pivoting code is
/// correct for both.
pub trait Scalar: Clone + PartialOrd + std::fmt::Debug {
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// `self + o`.
    fn add(&self, o: &Self) -> Self;
    /// `self - o`.
    fn sub(&self, o: &Self) -> Self;
    /// `self * o`.
    fn mul(&self, o: &Self) -> Self;
    /// `self / o`.
    fn div(&self, o: &Self) -> Self;
    /// `-self`.
    fn neg(&self) -> Self;
    /// True when zero (within tolerance for floats).
    fn is_zero(&self) -> bool;
    /// True when strictly positive (beyond tolerance for floats).
    fn is_positive(&self) -> bool {
        !self.is_zero() && *self > Self::zero()
    }
    /// True when strictly negative (beyond tolerance for floats).
    fn is_negative(&self) -> bool {
        !self.is_zero() && *self < Self::zero()
    }
}

impl Scalar for Rational {
    fn zero() -> Self {
        Rational::ZERO
    }
    fn one() -> Self {
        Rational::ONE
    }
    fn add(&self, o: &Self) -> Self {
        *self + *o
    }
    fn sub(&self, o: &Self) -> Self {
        *self - *o
    }
    fn mul(&self, o: &Self) -> Self {
        *self * *o
    }
    fn div(&self, o: &Self) -> Self {
        *self / *o
    }
    fn neg(&self) -> Self {
        -*self
    }
    fn is_zero(&self) -> bool {
        Rational::is_zero(self)
    }
}

/// Comparison tolerance for the floating-point instantiation.
const F64_EPS: f64 = 1e-9;

impl Scalar for f64 {
    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
    fn add(&self, o: &Self) -> Self {
        self + o
    }
    fn sub(&self, o: &Self) -> Self {
        self - o
    }
    fn mul(&self, o: &Self) -> Self {
        self * o
    }
    fn div(&self, o: &Self) -> Self {
        self / o
    }
    fn neg(&self) -> Self {
        -self
    }
    fn is_zero(&self) -> bool {
        self.abs() < F64_EPS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rational_scalar_predicates() {
        assert!(Scalar::is_zero(&Rational::ZERO));
        assert!(Rational::new(1, 4).is_positive());
        assert!(Rational::new(-1, 4).is_negative());
    }

    #[test]
    fn f64_tolerance() {
        assert!(Scalar::is_zero(&1e-12));
        assert!(1e-3.is_positive());
        assert!((-1e-3).is_negative());
        assert!(!1e-12.is_positive());
    }

    #[test]
    fn field_ops_agree() {
        let a = Rational::new(3, 4);
        let b = Rational::new(1, 2);
        assert_eq!(Scalar::add(&a, &b), Rational::new(5, 4));
        assert_eq!(Scalar::div(&a, &b), Rational::new(3, 2));
        assert_eq!(Scalar::neg(&a), Rational::new(-3, 4));
    }
}
