//! Property tests for the LP solver.
//!
//! Oracle: for *graphs* (all hyperedges binary), the fractional edge-cover
//! LP always has a half-integral optimum (König-type theorem), so a brute
//! force over `x_e ∈ {0, ½, 1}` is exact and independent of the simplex
//! implementation.

use proptest::prelude::*;

use crate::rational::Rational;
use crate::{fractional_edge_cover, fractional_edge_cover_exact};

/// Random connected-ish graph edge lists over `n` vertices where every
/// vertex is covered (so the LP is feasible).
fn covered_graph() -> impl Strategy<Value = (usize, Vec<Vec<usize>>)> {
    (2usize..6)
        .prop_flat_map(|n| {
            let extra = proptest::collection::vec((0..n, 0..n), 0..6);
            (Just(n), extra)
        })
        .prop_map(|(n, extra)| {
            // Spanning path guarantees coverage of every vertex.
            let mut edges: Vec<Vec<usize>> = (0..n - 1).map(|i| vec![i, i + 1]).collect();
            for (a, b) in extra {
                if a != b {
                    edges.push(vec![a, b]);
                }
            }
            (n, edges)
        })
}

fn brute_force_half_integral(n: usize, edges: &[Vec<usize>]) -> Rational {
    let m = edges.len();
    let choices = [Rational::ZERO, Rational::new(1, 2), Rational::ONE];
    let mut best: Option<Rational> = None;
    let mut assignment = vec![0usize; m];
    loop {
        // Check feasibility of the current assignment.
        let feasible = (0..n).all(|v| {
            let mut total = Rational::ZERO;
            for (e, edge) in edges.iter().enumerate() {
                if edge.contains(&v) {
                    total = total + choices[assignment[e]];
                }
            }
            total >= Rational::ONE
        });
        if feasible {
            let mut cost = Rational::ZERO;
            for &a in &assignment {
                cost = cost + choices[a];
            }
            best = Some(match best {
                None => cost,
                Some(b) if cost < b => cost,
                Some(b) => b,
            });
        }
        // Next assignment in base 3.
        let mut i = 0;
        loop {
            if i == m {
                return best.expect("spanning path keeps the program feasible");
            }
            assignment[i] += 1;
            if assignment[i] < 3 {
                break;
            }
            assignment[i] = 0;
            i += 1;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn simplex_matches_half_integral_brute_force((n, edges) in covered_graph()) {
        prop_assume!(edges.len() <= 8); // keep the 3^m oracle cheap
        let (_, lp_value) = fractional_edge_cover_exact(n, &edges).unwrap();
        let brute = brute_force_half_integral(n, &edges);
        prop_assert_eq!(lp_value, brute);
    }

    #[test]
    fn solution_is_feasible((n, edges) in covered_graph()) {
        let (x, value) = fractional_edge_cover_exact(n, &edges).unwrap();
        // Every vertex covered with weight >= 1.
        for v in 0..n {
            let mut total = Rational::ZERO;
            for (e, edge) in edges.iter().enumerate() {
                if edge.contains(&v) {
                    total = total + x[e];
                }
            }
            prop_assert!(total >= Rational::ONE);
        }
        // Objective equals the sum of weights, all non-negative.
        let mut sum = Rational::ZERO;
        for xe in &x {
            prop_assert!(*xe >= Rational::ZERO);
            sum = sum + *xe;
        }
        prop_assert_eq!(sum, value);
    }

    #[test]
    fn f64_solver_agrees_with_exact((n, edges) in covered_graph()) {
        let (_, exact) = fractional_edge_cover_exact(n, &edges).unwrap();
        let w = vec![1.0; edges.len()];
        let (_, approx) = fractional_edge_cover(n, &edges, &w).unwrap();
        prop_assert!((approx - exact.to_f64()).abs() < 1e-6);
    }
}
