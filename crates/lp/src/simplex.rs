//! Dense two-phase primal simplex with Bland's anti-cycling rule.
//!
//! Problems are stated in the covering form the AGM bound needs:
//! `minimize c·x subject to A x ≥ b, x ≥ 0`. Each constraint gets a
//! surplus variable; feasibility is established in phase 1 with artificial
//! variables. The tableau is dense — the planner's programs have at most a
//! handful of rows and columns.

use crate::scalar::Scalar;

/// A linear program `minimize objective · x  s.t.  rows · x ≥ rhs, x ≥ 0`.
#[derive(Debug, Clone)]
pub struct LinearProgram<S> {
    /// Cost vector (length = number of variables).
    pub objective: Vec<S>,
    /// Constraints as `(coefficients, rhs)` meaning `coeffs · x ≥ rhs`.
    pub constraints: Vec<(Vec<S>, S)>,
}

/// Result of [`solve`].
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome<S> {
    /// An optimal basic solution.
    Optimal {
        /// Primal solution vector.
        x: Vec<S>,
        /// Objective value at `x`.
        value: S,
    },
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded below on the feasible region.
    Unbounded,
}

struct Tableau<S> {
    rows: Vec<Vec<S>>, // m rows, each of width total_cols (no rhs)
    rhs: Vec<S>,
    basis: Vec<usize>,
    n_vars: usize, // original variables
}

impl<S: Scalar> Tableau<S> {
    fn pivot(&mut self, cost: &mut [S], cost_rhs: &mut S, pr: usize, pc: usize) {
        // Normalize the pivot row.
        let p = self.rows[pr][pc].clone();
        debug_assert!(!p.is_zero());
        for v in self.rows[pr].iter_mut() {
            *v = v.div(&p);
        }
        self.rhs[pr] = self.rhs[pr].div(&p);
        // Eliminate the pivot column from every other row.
        for r in 0..self.rows.len() {
            if r == pr {
                continue;
            }
            let f = self.rows[r][pc].clone();
            if f.is_zero() {
                continue;
            }
            for c in 0..self.rows[r].len() {
                let delta = f.mul(&self.rows[pr][c]);
                self.rows[r][c] = self.rows[r][c].sub(&delta);
            }
            self.rhs[r] = self.rhs[r].sub(&f.mul(&self.rhs[pr]));
        }
        // And from the cost row.
        let f = cost[pc].clone();
        if !f.is_zero() {
            for (cv, pv) in cost.iter_mut().zip(self.rows[pr].iter()) {
                *cv = cv.sub(&f.mul(pv));
            }
            *cost_rhs = cost_rhs.sub(&f.mul(&self.rhs[pr]));
        }
        self.basis[pr] = pc;
    }

    /// Run Bland-rule pivoting until optimality over the allowed column
    /// range `0..max_col`. Returns `false` when unbounded.
    fn optimize(&mut self, cost: &mut [S], cost_rhs: &mut S, max_col: usize) -> bool {
        loop {
            // Entering column: smallest index with negative reduced cost.
            let Some(pc) = (0..max_col).find(|&c| cost[c].is_negative()) else {
                return true; // optimal
            };
            // Leaving row: minimum ratio rhs/row[pc] over positive entries,
            // ties broken by smallest basis index (Bland).
            let mut best: Option<(usize, S)> = None;
            for r in 0..self.rows.len() {
                if !self.rows[r][pc].is_positive() {
                    continue;
                }
                let ratio = self.rhs[r].div(&self.rows[r][pc]);
                let better = match &best {
                    None => true,
                    Some((br, bratio)) => {
                        ratio < *bratio
                            || (!ratio.sub(bratio).is_negative()
                                && !ratio.sub(bratio).is_positive()
                                && self.basis[r] < self.basis[*br])
                    }
                };
                if better {
                    best = Some((r, ratio));
                }
            }
            match best {
                None => return false, // unbounded in this column
                Some((pr, _)) => self.pivot(cost, cost_rhs, pr, pc),
            }
        }
    }
}

/// Solve a covering-form linear program. See [`LinearProgram`].
pub fn solve<S: Scalar>(lp: &LinearProgram<S>) -> LpOutcome<S> {
    let n = lp.objective.len();
    let m = lp.constraints.len();
    if m == 0 {
        // x = 0 is optimal for non-negative costs; negative costs are
        // unbounded (x can grow without constraint).
        if lp.objective.iter().any(|c| c.is_negative()) {
            return LpOutcome::Unbounded;
        }
        return LpOutcome::Optimal { x: vec![S::zero(); n], value: S::zero() };
    }
    let n_structural = n + m; // original + surplus
    let total = n_structural + m; // + artificial
    let mut t = Tableau {
        rows: Vec::with_capacity(m),
        rhs: Vec::with_capacity(m),
        basis: (0..m).map(|i| n_structural + i).collect(),
        n_vars: n,
    };
    for (i, (coeffs, rhs)) in lp.constraints.iter().enumerate() {
        assert_eq!(coeffs.len(), n, "constraint arity mismatch");
        let mut row = vec![S::zero(); total];
        let negate = rhs.is_negative();
        for (j, a) in coeffs.iter().enumerate() {
            row[j] = if negate { a.neg() } else { a.clone() };
        }
        // Surplus: coeffs · x - s = rhs  (sign flips with the row).
        row[n + i] = if negate { S::one() } else { S::one().neg() };
        row[n_structural + i] = S::one();
        t.rows.push(row);
        t.rhs.push(if negate { rhs.neg() } else { rhs.clone() });
    }

    // Phase 1: minimize the sum of artificials. Reduced costs start as
    // c1 - 1ᵀA (artificial basis has unit cost).
    let mut cost1 = vec![S::zero(); total];
    for c in cost1[n_structural..].iter_mut() {
        *c = S::one();
    }
    let mut cost1_rhs = S::zero();
    for r in 0..m {
        for (cv, rv) in cost1.iter_mut().zip(t.rows[r].iter()) {
            *cv = cv.sub(rv);
        }
        cost1_rhs = cost1_rhs.sub(&t.rhs[r]);
    }
    if !t.optimize(&mut cost1, &mut cost1_rhs, total) {
        // Phase 1 is bounded below by 0; unbounded cannot happen.
        unreachable!("phase-1 simplex reported unbounded");
    }
    // Feasible iff the phase-1 optimum is zero (value = -cost1_rhs).
    if cost1_rhs.neg().is_positive() {
        return LpOutcome::Infeasible;
    }

    // Drive artificial variables out of the basis; drop redundant rows.
    let mut r = 0;
    let mut dummy_cost = vec![S::zero(); total];
    let mut dummy_rhs = S::zero();
    while r < t.rows.len() {
        if t.basis[r] >= n_structural {
            if let Some(pc) = (0..n_structural).find(|&c| !t.rows[r][c].is_zero()) {
                t.pivot(&mut dummy_cost, &mut dummy_rhs, r, pc);
                r += 1;
            } else {
                // Entire structural part is zero: redundant constraint.
                t.rows.remove(r);
                t.rhs.remove(r);
                t.basis.remove(r);
            }
        } else {
            r += 1;
        }
    }

    // Phase 2: original objective, artificial columns excluded.
    let mut cost2 = vec![S::zero(); total];
    cost2[..n].clone_from_slice(&lp.objective);
    let mut cost2_rhs = S::zero();
    for r in 0..t.rows.len() {
        let b = t.basis[r];
        let cb = cost2[b].clone();
        if cb.is_zero() {
            continue;
        }
        for (cv, rv) in cost2.iter_mut().zip(t.rows[r].iter()) {
            *cv = cv.sub(&cb.mul(rv));
        }
        cost2_rhs = cost2_rhs.sub(&cb.mul(&t.rhs[r]));
    }
    if !t.optimize(&mut cost2, &mut cost2_rhs, n_structural) {
        return LpOutcome::Unbounded;
    }

    let mut x = vec![S::zero(); t.n_vars];
    for (r, &b) in t.basis.iter().enumerate() {
        if b < t.n_vars {
            x[b] = t.rhs[r].clone();
        }
    }
    LpOutcome::Optimal { x, value: cost2_rhs.neg() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rational::Rational;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    fn ri(n: i128) -> Rational {
        Rational::from_int(n)
    }

    #[test]
    fn trivial_no_constraints() {
        let lp = LinearProgram { objective: vec![ri(1), ri(2)], constraints: vec![] };
        assert_eq!(solve(&lp), LpOutcome::Optimal { x: vec![ri(0), ri(0)], value: ri(0) });
    }

    #[test]
    fn unbounded_without_constraints() {
        let lp = LinearProgram { objective: vec![ri(-1)], constraints: vec![] };
        assert_eq!(solve(&lp), LpOutcome::Unbounded);
    }

    #[test]
    fn single_variable_cover() {
        // min x st x >= 3
        let lp = LinearProgram { objective: vec![ri(1)], constraints: vec![(vec![ri(1)], ri(3))] };
        assert_eq!(solve(&lp), LpOutcome::Optimal { x: vec![ri(3)], value: ri(3) });
    }

    #[test]
    fn two_variable_cover() {
        // min x + y  st  x + y >= 1, x >= 1/2 — optimum 1.
        let lp = LinearProgram {
            objective: vec![ri(1), ri(1)],
            constraints: vec![(vec![ri(1), ri(1)], ri(1)), (vec![ri(1), ri(0)], r(1, 2))],
        };
        match solve(&lp) {
            LpOutcome::Optimal { value, x } => {
                assert_eq!(value, ri(1));
                assert!(x[0] >= r(1, 2));
            }
            o => panic!("unexpected outcome {o:?}"),
        }
    }

    #[test]
    fn triangle_cover_is_three_halves() {
        // Vertex constraints of the triangle hypergraph.
        let lp = LinearProgram {
            objective: vec![ri(1), ri(1), ri(1)],
            constraints: vec![
                (vec![ri(1), ri(0), ri(1)], ri(1)), // x covered by R, T
                (vec![ri(1), ri(1), ri(0)], ri(1)), // y covered by R, S
                (vec![ri(0), ri(1), ri(1)], ri(1)), // z covered by S, T
            ],
        };
        match solve(&lp) {
            LpOutcome::Optimal { value, x } => {
                assert_eq!(value, r(3, 2));
                assert_eq!(x, vec![r(1, 2), r(1, 2), r(1, 2)]);
            }
            o => panic!("unexpected outcome {o:?}"),
        }
    }

    #[test]
    fn infeasible_detected() {
        // x >= 2 and -x >= -1 (i.e. x <= 1): empty.
        let lp = LinearProgram {
            objective: vec![ri(1)],
            constraints: vec![(vec![ri(1)], ri(2)), (vec![ri(-1)], ri(-1))],
        };
        assert_eq!(solve(&lp), LpOutcome::Infeasible);
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        // -x >= -5 (x <= 5), min -x ... bounded: optimum -5 at x=5.
        let lp =
            LinearProgram { objective: vec![ri(-1)], constraints: vec![(vec![ri(-1)], ri(-5))] };
        assert_eq!(solve(&lp), LpOutcome::Optimal { x: vec![ri(5)], value: ri(-5) });
    }

    #[test]
    fn unbounded_with_constraints() {
        // min -x st x >= 1: unbounded below.
        let lp = LinearProgram { objective: vec![ri(-1)], constraints: vec![(vec![ri(1)], ri(1))] };
        assert_eq!(solve(&lp), LpOutcome::Unbounded);
    }

    #[test]
    fn redundant_constraints_are_dropped() {
        // Same constraint twice plus its double: min x st x >= 1 (x3).
        let lp = LinearProgram {
            objective: vec![ri(1)],
            constraints: vec![(vec![ri(1)], ri(1)), (vec![ri(1)], ri(1)), (vec![ri(2)], ri(2))],
        };
        assert_eq!(solve(&lp), LpOutcome::Optimal { x: vec![ri(1)], value: ri(1) });
    }

    #[test]
    fn f64_instantiation_matches_rational() {
        let lp = LinearProgram {
            objective: vec![1.0, 1.0, 1.0],
            constraints: vec![
                (vec![1.0, 0.0, 1.0], 1.0),
                (vec![1.0, 1.0, 0.0], 1.0),
                (vec![0.0, 1.0, 1.0], 1.0),
            ],
        };
        match solve(&lp) {
            LpOutcome::Optimal { value, .. } => assert!((value - 1.5).abs() < 1e-9),
            o => panic!("unexpected outcome {o:?}"),
        }
    }

    #[test]
    fn degenerate_program_terminates() {
        // Multiple ties in the ratio test exercise Bland's rule.
        let lp = LinearProgram {
            objective: vec![ri(1), ri(1)],
            constraints: vec![
                (vec![ri(1), ri(1)], ri(1)),
                (vec![ri(1), ri(1)], ri(1)),
                (vec![ri(2), ri(2)], ri(2)),
                (vec![ri(1), ri(0)], ri(0)),
            ],
        };
        match solve(&lp) {
            LpOutcome::Optimal { value, .. } => assert_eq!(value, ri(1)),
            o => panic!("unexpected outcome {o:?}"),
        }
    }
}
