//! Exact rational arithmetic over `i128`.
//!
//! The LPs solved here are tiny (LUBM queries have at most six hyperedges),
//! so a dense simplex over normalized `i128` fractions is both exact and
//! fast. Overflow is a programming error for these problem sizes and
//! panics via checked arithmetic.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A normalized rational number `num / den` with `den > 0` and
/// `gcd(|num|, den) == 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.abs()
}

impl Rational {
    /// Zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// One.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Construct `num / den`, normalizing sign and common factors.
    ///
    /// # Panics
    /// Panics when `den == 0`.
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "rational with zero denominator");
        let g = gcd(num, den);
        let sign = if den < 0 { -1 } else { 1 };
        if g == 0 {
            return Rational::ZERO;
        }
        Rational { num: sign * num / g, den: sign * den / g }
    }

    /// Construct from an integer.
    pub fn from_int(n: i128) -> Self {
        Rational { num: n, den: 1 }
    }

    /// Numerator (sign-carrying).
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// Convert to `f64` (used only for reporting).
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// True when exactly zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics when `self` is zero.
    pub fn recip(&self) -> Self {
        assert!(self.num != 0, "reciprocal of zero");
        Rational::new(self.den, self.num)
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, o: Rational) -> Rational {
        Rational::new(
            self.num
                .checked_mul(o.den)
                .and_then(|a| a.checked_add(o.num.checked_mul(self.den).unwrap()))
                .unwrap(),
            self.den.checked_mul(o.den).unwrap(),
        )
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, o: Rational) -> Rational {
        self + (-o)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, o: Rational) -> Rational {
        // Cross-reduce before multiplying to keep magnitudes small.
        let g1 = gcd(self.num, o.den).max(1);
        let g2 = gcd(o.num, self.den).max(1);
        Rational::new(
            (self.num / g1).checked_mul(o.num / g2).unwrap(),
            (self.den / g2).checked_mul(o.den / g1).unwrap(),
        )
    }
}

impl Div for Rational {
    type Output = Rational;
    #[allow(clippy::suspicious_arithmetic_impl)] // a/b = a * (1/b) by definition
    fn div(self, o: Rational) -> Rational {
        self * o.recip()
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational { num: -self.num, den: self.den }
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, o: &Rational) -> Option<Ordering> {
        Some(self.cmp(o))
    }
}

impl Ord for Rational {
    fn cmp(&self, o: &Rational) -> Ordering {
        // den > 0 on both sides, so cross-multiplication preserves order.
        (self.num.checked_mul(o.den).unwrap()).cmp(&o.num.checked_mul(self.den).unwrap())
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl From<i128> for Rational {
    fn from(n: i128) -> Self {
        Rational::from_int(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
        assert_eq!(Rational::new(-2, -4), Rational::new(1, 2));
        assert_eq!(Rational::new(2, -4), Rational::new(-1, 2));
        assert_eq!(Rational::new(0, 5), Rational::ZERO);
    }

    #[test]
    fn arithmetic() {
        let half = Rational::new(1, 2);
        let third = Rational::new(1, 3);
        assert_eq!(half + third, Rational::new(5, 6));
        assert_eq!(half - third, Rational::new(1, 6));
        assert_eq!(half * third, Rational::new(1, 6));
        assert_eq!(half / third, Rational::new(3, 2));
        assert_eq!(-half, Rational::new(-1, 2));
    }

    #[test]
    fn ordering() {
        assert!(Rational::new(1, 3) < Rational::new(1, 2));
        assert!(Rational::new(-1, 2) < Rational::ZERO);
        assert!(Rational::new(7, 7) == Rational::ONE);
    }

    #[test]
    fn display() {
        assert_eq!(Rational::new(3, 2).to_string(), "3/2");
        assert_eq!(Rational::from_int(4).to_string(), "4");
    }

    #[test]
    fn recip() {
        assert_eq!(Rational::new(2, 3).recip(), Rational::new(3, 2));
        assert_eq!(Rational::new(-2, 3).recip(), Rational::new(-3, 2));
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }

    #[test]
    fn to_f64() {
        assert!((Rational::new(3, 2).to_f64() - 1.5).abs() < 1e-12);
    }
}
