//! Fractional edge covers and the AGM output-size bound (paper §II-B).
//!
//! For a query hypergraph `H = (V, E)` with relation sizes `|R_e|`, the
//! AGM bound says the output size is at most `Π_e |R_e|^{x_e}` for any
//! fractional edge cover `x` (each vertex covered with total weight ≥ 1).
//! The tightest bound minimizes `Σ_e x_e · log₂ |R_e|`; with unit weights
//! the optimum is the fractional edge-cover number — the "width" the paper
//! assigns to GHD nodes (e.g. 1.5 for the LUBM query 2 triangle).

use crate::rational::Rational;
use crate::simplex::{solve, LinearProgram, LpOutcome};

/// Exact fractional edge-cover number with unit weights.
///
/// `edges[e]` lists the vertex indices (`0..num_vertices`) covered by
/// hyperedge `e`. Returns the per-edge weights `x_e` and the optimum
/// `Σ x_e`, or `None` when some vertex appears in no edge (the program is
/// then infeasible — such a query is malformed).
pub fn fractional_edge_cover_exact(
    num_vertices: usize,
    edges: &[Vec<usize>],
) -> Option<(Vec<Rational>, Rational)> {
    let weights = vec![Rational::ONE; edges.len()];
    solve_cover(num_vertices, edges, &weights)
}

/// Weighted fractional edge cover over exact rationals.
///
/// Used with `w_e = 1`; for cardinality-aware bounds prefer [`agm_bound`],
/// which works in `log₂` space over `f64`.
pub fn solve_cover(
    num_vertices: usize,
    edges: &[Vec<usize>],
    weights: &[Rational],
) -> Option<(Vec<Rational>, Rational)> {
    assert_eq!(edges.len(), weights.len());
    let constraints = (0..num_vertices)
        .map(|v| {
            let row = edges
                .iter()
                .map(|e| if e.contains(&v) { Rational::ONE } else { Rational::ZERO })
                .collect::<Vec<_>>();
            (row, Rational::ONE)
        })
        .collect();
    let lp = LinearProgram { objective: weights.to_vec(), constraints };
    match solve(&lp) {
        LpOutcome::Optimal { x, value } => Some((x, value)),
        _ => None,
    }
}

/// Weighted fractional edge cover over `f64`.
///
/// Returns `(x, optimum)` minimizing `Σ_e weights[e] · x_e`.
pub fn fractional_edge_cover(
    num_vertices: usize,
    edges: &[Vec<usize>],
    weights: &[f64],
) -> Option<(Vec<f64>, f64)> {
    assert_eq!(edges.len(), weights.len());
    let constraints = (0..num_vertices)
        .map(|v| {
            let row =
                edges.iter().map(|e| if e.contains(&v) { 1.0 } else { 0.0 }).collect::<Vec<_>>();
            (row, 1.0)
        })
        .collect();
    let lp = LinearProgram { objective: weights.to_vec(), constraints };
    match solve(&lp) {
        LpOutcome::Optimal { x, value } => Some((x, value)),
        _ => None,
    }
}

/// The AGM output-size bound `Π_e |R_e|^{x_e}` for the tightest fractional
/// edge cover, computed in `log₂` space.
///
/// `sizes[e]` is the cardinality of the relation on hyperedge `e`; empty
/// relations are treated as size 1 so the bound degrades gracefully to
/// "at most one (empty) output".
pub fn agm_bound(num_vertices: usize, edges: &[Vec<usize>], sizes: &[u64]) -> Option<f64> {
    assert_eq!(edges.len(), sizes.len());
    let weights: Vec<f64> = sizes.iter().map(|&s| (s.max(1) as f64).log2()).collect();
    let (_, log_bound) = fractional_edge_cover(num_vertices, edges, &weights)?;
    Some(log_bound.exp2())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn single_edge() {
        let (x, v) = fractional_edge_cover_exact(2, &[vec![0, 1]]).unwrap();
        assert_eq!(v, Rational::ONE);
        assert_eq!(x, vec![Rational::ONE]);
    }

    #[test]
    fn triangle_is_three_halves() {
        let edges = vec![vec![0, 1], vec![1, 2], vec![2, 0]];
        let (x, v) = fractional_edge_cover_exact(3, &edges).unwrap();
        assert_eq!(v, r(3, 2));
        assert_eq!(x, vec![r(1, 2), r(1, 2), r(1, 2)]);
    }

    #[test]
    fn path_of_two_edges() {
        // R(x,y), S(y,z): x forces R, z forces S → cover number 2.
        let edges = vec![vec![0, 1], vec![1, 2]];
        let (_, v) = fractional_edge_cover_exact(3, &edges).unwrap();
        assert_eq!(v, Rational::from_int(2));
    }

    #[test]
    fn four_cycle_is_two() {
        let edges = vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 0]];
        let (_, v) = fractional_edge_cover_exact(4, &edges).unwrap();
        assert_eq!(v, Rational::from_int(2));
    }

    #[test]
    fn five_cycle_is_five_halves() {
        let edges = vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 4], vec![4, 0]];
        let (_, v) = fractional_edge_cover_exact(5, &edges).unwrap();
        assert_eq!(v, r(5, 2));
    }

    #[test]
    fn star_needs_every_leaf_edge() {
        // S1(x,a), S2(x,b), S3(x,c): leaves force all three edges.
        let edges = vec![vec![0, 1], vec![0, 2], vec![0, 3]];
        let (x, v) = fractional_edge_cover_exact(4, &edges).unwrap();
        assert_eq!(v, Rational::from_int(3));
        assert_eq!(x, vec![Rational::ONE; 3]);
    }

    #[test]
    fn covering_hyperedge_costs_one() {
        // One big edge covering everything plus small edges: optimum 1.
        let edges = vec![vec![0, 1, 2], vec![0, 1], vec![2]];
        let (_, v) = fractional_edge_cover_exact(3, &edges).unwrap();
        assert_eq!(v, Rational::ONE);
    }

    #[test]
    fn isolated_vertex_is_infeasible() {
        assert!(fractional_edge_cover_exact(2, &[vec![0]]).is_none());
    }

    #[test]
    fn weighted_cover_prefers_cheap_edges() {
        // Two parallel edges over {0,1}; weight 10 vs 1 → pick the cheap one.
        let edges = vec![vec![0, 1], vec![0, 1]];
        let w = vec![Rational::from_int(10), Rational::ONE];
        let (x, v) = solve_cover(2, &edges, &w).unwrap();
        assert_eq!(v, Rational::ONE);
        assert_eq!(x, vec![Rational::ZERO, Rational::ONE]);
    }

    #[test]
    fn agm_bound_triangle() {
        // Triangle with all |R| = N: bound is N^{3/2}.
        let edges = vec![vec![0, 1], vec![1, 2], vec![2, 0]];
        let n = 10_000u64;
        let bound = agm_bound(3, &edges, &[n, n, n]).unwrap();
        assert!((bound - (n as f64).powf(1.5)).abs() / bound < 1e-9);
    }

    #[test]
    fn agm_bound_join_of_two() {
        // R(x,y) ⋈ S(y,z): bound |R|·|S|.
        let edges = vec![vec![0, 1], vec![1, 2]];
        let bound = agm_bound(3, &edges, &[100, 50]).unwrap();
        assert!((bound - 5000.0).abs() < 1e-6);
    }

    #[test]
    fn agm_bound_empty_relation() {
        let edges = vec![vec![0, 1]];
        let bound = agm_bound(2, &edges, &[0]).unwrap();
        assert!((bound - 1.0).abs() < 1e-9);
    }
}
