//! # eh-bench
//!
//! The benchmark harness that regenerates every table and figure of
//! Aberger et al. (ICDE 2016):
//!
//! | Artefact | Binary | What it reproduces |
//! |---|---|---|
//! | Table I | `table1` | relative speedup of +Layout / +Attribute / +GHD / +Pipelining on LUBM queries 1, 2, 4, 7, 8, 14 |
//! | Table II | `table2` | runtimes of EmptyHeaded vs the four simulated engines on the 12-query LUBM workload |
//! | Figure 1 | `figure1` | vertically partitioned relation → dictionary encoding → trie |
//! | Figure 2 | `figure2` | the GHD chosen for LUBM query 2 (fhw 3/2) |
//! | Figure 3 | `figure3` | the across-node GHD transformation of LUBM query 4 |
//!
//! Criterion micro/ablation benches live under `benches/`.
//!
//! Timing follows the paper's methodology (§IV-A4): each query runs seven
//! times, the best and worst runs are discarded, and the remaining five
//! are averaged. Query compilation (planning) is excluded for the
//! worst-case optimal engines, as the paper excludes EmptyHeaded's
//! compilation time.

use std::io::Write;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Command-line options shared by the harness binaries.
#[derive(Debug, Clone, Copy)]
pub struct HarnessArgs {
    /// LUBM scale (number of universities).
    pub universities: u32,
    /// Total timed runs per measurement (best and worst are dropped).
    pub runs: usize,
    /// Generator seed.
    pub seed: u64,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs { universities: 5, runs: 7, seed: 42 }
    }
}

impl HarnessArgs {
    /// Parse `--universities N`, `--runs K`, `--seed S` from argv;
    /// unknown arguments abort with a usage message.
    pub fn from_env() -> HarnessArgs {
        let mut args = HarnessArgs::default();
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let value = |i: usize| {
                argv.get(i + 1)
                    .unwrap_or_else(|| panic!("missing value after {}", argv[i]))
                    .parse::<u64>()
                    .unwrap_or_else(|e| panic!("bad value after {}: {e}", argv[i]))
            };
            match argv[i].as_str() {
                "--universities" | "-u" => {
                    args.universities = value(i) as u32;
                    i += 2;
                }
                "--runs" | "-r" => {
                    args.runs = value(i) as usize;
                    i += 2;
                }
                "--seed" | "-s" => {
                    args.seed = value(i);
                    i += 2;
                }
                other => {
                    eprintln!(
                        "unknown argument {other}; expected --universities N, --runs K, --seed S"
                    );
                    std::process::exit(2);
                }
            }
        }
        assert!(args.runs >= 3, "need at least 3 runs to drop best and worst");
        args
    }
}

/// Deterministic pseudo-random sorted value set: `n` strictly increasing
/// `u32`s with average stride `(1 + max_stride) / 2` (larger stride =
/// sparser set). Shared by the setops criterion bench and the
/// `setops_kernels` gate harness so the locally-benchmarked workloads
/// and the CI-gated ones come from one generator.
pub fn synth_set(n: usize, max_stride: u32, seed: u64) -> Vec<u32> {
    let mut state = seed | 1;
    let mut v = 0u32;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        v = v.wrapping_add(1 + ((state >> 33) as u32 % max_stride));
        out.push(v);
    }
    out
}

/// Paper §IV-A4 timing: run `f` `runs` times, drop the best and worst
/// wall-clock times, and average the rest.
pub fn measure(runs: usize, mut f: impl FnMut()) -> Duration {
    assert!(runs >= 3);
    let mut times: Vec<Duration> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed()
        })
        .collect();
    times.sort_unstable();
    let kept = &times[1..times.len() - 1];
    kept.iter().sum::<Duration>() / kept.len() as u32
}

/// Milliseconds with three decimals, for table cells.
pub fn fmt_ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

/// A relative-runtime cell: `1.00x` marks the best engine.
pub fn fmt_rel(d: Duration, best: Duration) -> String {
    format!("{:.2}x", d.as_secs_f64() / best.as_secs_f64())
}

/// Machine-readable benchmark emission: collects flat key → value
/// metrics and writes them as `BENCH_<name>.json` (into `$EH_BENCH_OUT`
/// if set, else the working directory), so CI runs accumulate a
/// perf-trajectory file set instead of scroll-back tables.
///
/// The JSON is hand-rendered (the build environment has no serde): one
/// object with `bench`, `meta` string fields, and a `metrics` object of
/// numbers.
pub struct BenchReport {
    name: String,
    meta: Vec<(String, String)>,
    metrics: Vec<(String, f64)>,
}

impl BenchReport {
    /// Start a report for the benchmark `name`.
    pub fn new(name: &str) -> BenchReport {
        BenchReport { name: name.to_string(), meta: Vec::new(), metrics: Vec::new() }
    }

    /// Attach a descriptive string field (machine, scale, mode, ...).
    pub fn meta(&mut self, key: &str, value: impl ToString) -> &mut Self {
        self.meta.push((key.to_string(), value.to_string()));
        self
    }

    /// Record one numeric metric.
    pub fn metric(&mut self, key: &str, value: f64) -> &mut Self {
        self.metrics.push((key.to_string(), value));
        self
    }

    /// Record a duration in milliseconds under `key`.
    pub fn metric_ms(&mut self, key: &str, d: Duration) -> &mut Self {
        self.metric(key, d.as_secs_f64() * 1e3)
    }

    fn render(&self) -> String {
        fn esc(s: &str) -> String {
            s.chars()
                .flat_map(|c| match c {
                    '"' => "\\\"".chars().collect::<Vec<_>>(),
                    '\\' => "\\\\".chars().collect(),
                    c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
                    c => vec![c],
                })
                .collect()
        }
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"bench\": \"{}\",\n", esc(&self.name)));
        out.push_str("  \"meta\": {");
        for (i, (k, v)) in self.meta.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": \"{}\"", esc(k), esc(v)));
        }
        out.push_str(if self.meta.is_empty() { "},\n" } else { "\n  },\n" });
        out.push_str("  \"metrics\": {");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            // JSON has no NaN/Inf; emit null so a broken measurement
            // stays distinguishable from a genuine zero.
            if v.is_finite() {
                out.push_str(&format!("\n    \"{}\": {v}", esc(k)));
            } else {
                out.push_str(&format!("\n    \"{}\": null", esc(k)));
            }
        }
        out.push_str(if self.metrics.is_empty() { "}\n" } else { "\n  }\n" });
        out.push_str("}\n");
        out
    }

    /// Write `BENCH_<name>.json` and return its path.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let dir = std::env::var_os("EH_BENCH_OUT").map(PathBuf::from).unwrap_or_default();
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(&dir)?;
        }
        let path = dir.join(format!("BENCH_{}.json", self.name));
        let mut f = std::fs::File::create(&path)?;
        f.write_all(self.render().as_bytes())?;
        Ok(path)
    }
}

/// Fixed-width table printer for harness output.
pub struct TablePrinter {
    widths: Vec<usize>,
    rows: Vec<Vec<String>>,
}

impl TablePrinter {
    /// Start a table with a header row.
    pub fn new(header: &[&str]) -> TablePrinter {
        let mut t = TablePrinter { widths: header.iter().map(|h| h.len()).collect(), rows: vec![] };
        t.row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
        t
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.widths.len(), "row arity mismatch");
        for (w, c) in self.widths.iter_mut().zip(cells) {
            *w = (*w).max(c.len());
        }
        self.rows.push(cells.to_vec());
    }

    /// Render with two-space column gaps; header separated by dashes.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, row) in self.rows.iter().enumerate() {
            let line: Vec<String> =
                row.iter().zip(&self.widths).map(|(c, w)| format!("{c:<w$}")).collect();
            out.push_str(line.join("  ").trim_end());
            out.push('\n');
            if i == 0 {
                let total: usize = self.widths.iter().sum::<usize>() + 2 * (self.widths.len() - 1);
                out.push_str(&"-".repeat(total));
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_drops_extremes() {
        let mut calls = 0;
        let d = measure(5, || calls += 1);
        assert_eq!(calls, 5);
        assert!(d.as_nanos() < 10_000_000);
    }

    #[test]
    fn table_printer_aligns() {
        let mut t = TablePrinter::new(&["Query", "Best"]);
        t.row(&["Q1".to_string(), "4.00".to_string()]);
        let s = t.render();
        assert!(s.contains("Query  Best"), "{s}");
        assert!(s.contains("Q1     4.00"), "{s}");
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_ms(Duration::from_micros(1500)), "1.500");
        assert_eq!(fmt_rel(Duration::from_millis(3), Duration::from_millis(2)), "1.50x");
    }

    #[test]
    fn default_args() {
        let a = HarnessArgs::default();
        assert_eq!(a.universities, 5);
        assert_eq!(a.runs, 7);
    }

    #[test]
    fn bench_report_renders_valid_flat_json() {
        let mut r = BenchReport::new("unit");
        r.meta("mode", "quick").meta("quoted", "a\"b\\c");
        r.metric("qps", 1234.5).metric_ms("lat", Duration::from_micros(1500));
        let s = r.render();
        assert!(s.contains("\"bench\": \"unit\""), "{s}");
        assert!(s.contains("\"mode\": \"quick\""), "{s}");
        assert!(s.contains("\"quoted\": \"a\\\"b\\\\c\""), "{s}");
        assert!(s.contains("\"qps\": 1234.5"), "{s}");
        assert!(s.contains("\"lat\": 1.5"), "{s}");
        // Non-finite measurements surface as null, not a fake zero.
        r.metric("broken", f64::INFINITY);
        assert!(r.render().contains("\"broken\": null"), "{}", r.render());
        // Balanced braces = parseable by any JSON reader.
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        // Empty sections stay valid.
        let empty = BenchReport::new("e").render();
        assert!(empty.contains("\"meta\": {}"), "{empty}");
        assert!(empty.contains("\"metrics\": {}"), "{empty}");
    }
}
