//! # eh-bench
//!
//! The benchmark harness that regenerates every table and figure of
//! Aberger et al. (ICDE 2016):
//!
//! | Artefact | Binary | What it reproduces |
//! |---|---|---|
//! | Table I | `table1` | relative speedup of +Layout / +Attribute / +GHD / +Pipelining on LUBM queries 1, 2, 4, 7, 8, 14 |
//! | Table II | `table2` | runtimes of EmptyHeaded vs the four simulated engines on the 12-query LUBM workload |
//! | Figure 1 | `figure1` | vertically partitioned relation → dictionary encoding → trie |
//! | Figure 2 | `figure2` | the GHD chosen for LUBM query 2 (fhw 3/2) |
//! | Figure 3 | `figure3` | the across-node GHD transformation of LUBM query 4 |
//!
//! Criterion micro/ablation benches live under `benches/`.
//!
//! Timing follows the paper's methodology (§IV-A4): each query runs seven
//! times, the best and worst runs are discarded, and the remaining five
//! are averaged. Query compilation (planning) is excluded for the
//! worst-case optimal engines, as the paper excludes EmptyHeaded's
//! compilation time.

use std::time::{Duration, Instant};

/// Command-line options shared by the harness binaries.
#[derive(Debug, Clone, Copy)]
pub struct HarnessArgs {
    /// LUBM scale (number of universities).
    pub universities: u32,
    /// Total timed runs per measurement (best and worst are dropped).
    pub runs: usize,
    /// Generator seed.
    pub seed: u64,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs { universities: 5, runs: 7, seed: 42 }
    }
}

impl HarnessArgs {
    /// Parse `--universities N`, `--runs K`, `--seed S` from argv;
    /// unknown arguments abort with a usage message.
    pub fn from_env() -> HarnessArgs {
        let mut args = HarnessArgs::default();
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let value = |i: usize| {
                argv.get(i + 1)
                    .unwrap_or_else(|| panic!("missing value after {}", argv[i]))
                    .parse::<u64>()
                    .unwrap_or_else(|e| panic!("bad value after {}: {e}", argv[i]))
            };
            match argv[i].as_str() {
                "--universities" | "-u" => {
                    args.universities = value(i) as u32;
                    i += 2;
                }
                "--runs" | "-r" => {
                    args.runs = value(i) as usize;
                    i += 2;
                }
                "--seed" | "-s" => {
                    args.seed = value(i);
                    i += 2;
                }
                other => {
                    eprintln!(
                        "unknown argument {other}; expected --universities N, --runs K, --seed S"
                    );
                    std::process::exit(2);
                }
            }
        }
        assert!(args.runs >= 3, "need at least 3 runs to drop best and worst");
        args
    }
}

/// Paper §IV-A4 timing: run `f` `runs` times, drop the best and worst
/// wall-clock times, and average the rest.
pub fn measure(runs: usize, mut f: impl FnMut()) -> Duration {
    assert!(runs >= 3);
    let mut times: Vec<Duration> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed()
        })
        .collect();
    times.sort_unstable();
    let kept = &times[1..times.len() - 1];
    kept.iter().sum::<Duration>() / kept.len() as u32
}

/// Milliseconds with three decimals, for table cells.
pub fn fmt_ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

/// A relative-runtime cell: `1.00x` marks the best engine.
pub fn fmt_rel(d: Duration, best: Duration) -> String {
    format!("{:.2}x", d.as_secs_f64() / best.as_secs_f64())
}

/// Fixed-width table printer for harness output.
pub struct TablePrinter {
    widths: Vec<usize>,
    rows: Vec<Vec<String>>,
}

impl TablePrinter {
    /// Start a table with a header row.
    pub fn new(header: &[&str]) -> TablePrinter {
        let mut t = TablePrinter { widths: header.iter().map(|h| h.len()).collect(), rows: vec![] };
        t.row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
        t
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.widths.len(), "row arity mismatch");
        for (w, c) in self.widths.iter_mut().zip(cells) {
            *w = (*w).max(c.len());
        }
        self.rows.push(cells.to_vec());
    }

    /// Render with two-space column gaps; header separated by dashes.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, row) in self.rows.iter().enumerate() {
            let line: Vec<String> =
                row.iter().zip(&self.widths).map(|(c, w)| format!("{c:<w$}")).collect();
            out.push_str(line.join("  ").trim_end());
            out.push('\n');
            if i == 0 {
                let total: usize = self.widths.iter().sum::<usize>() + 2 * (self.widths.len() - 1);
                out.push_str(&"-".repeat(total));
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_drops_extremes() {
        let mut calls = 0;
        let d = measure(5, || calls += 1);
        assert_eq!(calls, 5);
        assert!(d.as_nanos() < 10_000_000);
    }

    #[test]
    fn table_printer_aligns() {
        let mut t = TablePrinter::new(&["Query", "Best"]);
        t.row(&["Q1".to_string(), "4.00".to_string()]);
        let s = t.render();
        assert!(s.contains("Query  Best"), "{s}");
        assert!(s.contains("Q1     4.00"), "{s}");
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_ms(Duration::from_micros(1500)), "1.500");
        assert_eq!(fmt_rel(Duration::from_millis(3), Duration::from_millis(2)), "1.50x");
    }

    #[test]
    fn default_args() {
        let a = HarnessArgs::default();
        assert_eq!(a.universities, 5);
        assert_eq!(a.runs, 7);
    }
}
