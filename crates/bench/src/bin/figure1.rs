//! Regenerates **Figure 1** of Aberger et al. (ICDE 2016): the
//! transformation from a vertically partitioned relation to
//! EmptyHeaded's trie representation, using the figure's own
//! `subOrganizationOf` example.

use eh_rdf::{Term, Triple, TripleStore};
use eh_trie::{LayoutPolicy, Trie, TupleBuffer};

fn main() {
    // The figure's predicate relation.
    let rows = [
        ("University0", "Department0"),
        ("University0", "Department1"),
        ("University1", "Department1"),
    ];
    let store =
        TripleStore::from_triples(rows.iter().map(|&(s, o)| {
            Triple::new(Term::iri(s), Term::iri("suborganizationOf"), Term::iri(o))
        }));

    println!(
        "Figure 1 reproduction: vertically partitioned relation -> dictionary encoding -> trie\n"
    );
    println!("Predicate relation (suborganizationOf):");
    println!("  subject      object");
    for (s, o) in rows {
        println!("  {s:<12} {o}");
    }

    println!("\nDictionary encoding:");
    println!("  key  term");
    for (id, term) in store.dict().iter() {
        println!("  {id:<4} {}", term.as_str());
    }

    let table = store.table_by_name("suborganizationOf").expect("predicate table");
    println!("\nEncoded pairs (subject-major): {:?}", table.so_pairs());

    let trie = Trie::from_sorted(TupleBuffer::from_pairs(table.so_pairs()), LayoutPolicy::Auto);
    println!("\nTrie representation:");
    let root = trie.root_set();
    for v in root.iter() {
        let subject = store.dict().decode(v).as_str();
        let child = trie.child(0, 0, v).expect("child block");
        let objects: Vec<String> = trie
            .set(1, child)
            .iter()
            .map(|o| format!("{o} ({})", store.dict().decode(o).as_str()))
            .collect();
        println!("  {v} ({subject})");
        for o in objects {
            println!("    └─ {o}");
        }
    }
    println!(
        "\n{} tuples, {} bitset blocks, {} set bytes",
        trie.num_tuples(),
        trie.bitset_blocks(),
        trie.set_bytes()
    );
}
