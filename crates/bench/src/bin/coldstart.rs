//! Cold-start harness: N-Triples parse+build versus snapshot loads.
//!
//! ```text
//! cargo run --release -p eh-bench --bin coldstart -- --universities 1
//! ```
//!
//! Measures end-to-end time-to-first-query-ready for the three startup
//! paths a production deployment has:
//!
//! * **cold** — read an `.nt` file, parse it, dictionary-encode, sort
//!   every predicate table twice, and build the hot-order tries;
//! * **snapshot** — `StoreSnapshot::read` (bulk load, checksum, zero
//!   re-sorting) plus preloading the shipped frozen tries;
//! * **mmap** — `StoreSnapshot::read_from_path_mmap`: the same decode
//!   and checksums, but trie arenas serve straight from the mapped
//!   file's page-cache pages instead of being copied into the heap.
//!
//! Startup means *index-ready*: store loaded and every hot-order trie
//! resident — the state from which a first query pays only execution.
//! Query execution itself is identical in all paths (the tries are
//! equal), so it runs outside the timed region purely as the
//! equivalence check: every engine must answer LUBM query 2
//! byte-identically. Pass `--min-speedup X` to make the process exit
//! non-zero unless snapshot startup is at least `X` times faster than
//! cold startup, and `--min-mmap-speedup X` to require the mmap load to
//! be at least `X` times faster than the copying snapshot load (the CI
//! gates use both). A `BENCH_coldstart.json` report lands in
//! `$EH_BENCH_OUT` (or the working directory).

use std::time::Instant;

use eh_bench::{fmt_ms, measure, BenchReport, TablePrinter};
use eh_lubm::queries::lubm_query;
use eh_lubm::{generate_triples, GeneratorConfig};
use eh_rdf::{parse_ntriples, write_ntriples, StoreSnapshot, TripleStore};
use emptyheaded::{Engine, LoadMode, OptFlags, PlannerConfig, QueryResult};

struct Args {
    universities: u32,
    runs: usize,
    seed: u64,
    min_speedup: Option<f64>,
    min_mmap_speedup: Option<f64>,
}

fn parse_args() -> Args {
    let mut args =
        Args { universities: 1, runs: 5, seed: 42, min_speedup: None, min_mmap_speedup: None };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| -> f64 {
            argv.get(i + 1)
                .unwrap_or_else(|| panic!("missing value after {}", argv[i]))
                .parse::<f64>()
                .unwrap_or_else(|e| panic!("bad value after {}: {e}", argv[i]))
        };
        match argv[i].as_str() {
            "--universities" | "-u" => args.universities = value(i) as u32,
            "--runs" | "-r" => args.runs = value(i) as usize,
            "--seed" | "-s" => args.seed = value(i) as u64,
            "--min-speedup" => args.min_speedup = Some(value(i)),
            "--min-mmap-speedup" => args.min_mmap_speedup = Some(value(i)),
            other => {
                eprintln!(
                    "unknown argument {other}; expected --universities N, --runs K, --seed S, \
                     --min-speedup X, --min-mmap-speedup X"
                );
                std::process::exit(2);
            }
        }
        i += 2;
    }
    assert!(args.runs >= 3, "need at least 3 runs to drop best and worst");
    args
}

/// The "ready" probe both startup paths must pass through: answer LUBM
/// query 2 on a fresh engine over the given store state.
fn first_answer(engine: &Engine) -> QueryResult {
    let q = {
        let store = engine.store();
        lubm_query(2, &store).expect("LUBM query 2")
    };
    engine.run(&q).expect("query 2 runs")
}

/// Cold path: parse N-Triples text, build the store (dictionary + both
/// sort orders per predicate), and build the hot-order tries.
fn cold_start(nt_text: &str) -> Engine {
    let triples = parse_ntriples(nt_text).expect("generated N-Triples parse");
    let store = TripleStore::from_triples(triples);
    let tries = StoreSnapshot::hot_tries(&store);
    let engine = Engine::new(store, OptFlags::all());
    engine
        .catalog()
        .preload(tries.into_iter().map(|e| (e.pred, e.subject_first, e.shard as usize, e.trie)));
    engine
}

/// Snapshot path: bulk-load the snapshot file and preload its frozen
/// tries.
fn snapshot_start(path: &std::path::Path) -> Engine {
    Engine::from_snapshot(path, PlannerConfig::with_flags(OptFlags::all())).expect("snapshot loads")
}

/// Zero-copy path: map the snapshot file and serve trie arenas from its
/// pages (falls back to the copy path on unsupported platforms).
fn mmap_start(path: &std::path::Path) -> Engine {
    Engine::from_snapshot_mmap(path, PlannerConfig::with_flags(OptFlags::all()))
        .expect("mmap snapshot loads")
}

fn main() {
    let args = parse_args();
    let config = GeneratorConfig::tiny(args.universities).with_seed(args.seed);
    let triples = generate_triples(&config);
    let nt_text = write_ntriples(&triples);
    let dir = std::env::temp_dir();
    let nt_path = dir.join(format!("eh-coldstart-{}.nt", std::process::id()));
    let snap_path = dir.join(format!("eh-coldstart-{}.snap", std::process::id()));
    std::fs::write(&nt_path, &nt_text).expect("write .nt");
    println!(
        "LUBM tiny({}) seed {}: {} triples, {} N-Triples bytes",
        args.universities,
        args.seed,
        triples.len(),
        nt_text.len()
    );

    // Build the snapshot once from the cold store (reporting write cost),
    // then check all paths answer identically before timing anything.
    let cold_engine = cold_start(&nt_text);
    let cold_answer = first_answer(&cold_engine);
    let t0 = Instant::now();
    let (snap_bytes, _) = cold_engine.save_snapshot(&snap_path).expect("snapshot writes");
    let write_time = t0.elapsed();
    let snap_engine = snapshot_start(&snap_path);
    assert_eq!(first_answer(&snap_engine), cold_answer, "snapshot must answer byte-identically");
    let mmap_engine = mmap_start(&snap_path);
    let mmap_load = mmap_engine.load_info().expect("snapshot-built engine records its load");
    assert_eq!(first_answer(&mmap_engine), cold_answer, "mmap must answer byte-identically");
    if let Some(reason) = mmap_load.fallback {
        eprintln!("note: mmap load fell back to copy ({reason})");
    }
    drop((cold_engine, snap_engine, mmap_engine));

    // Timed startup runs (paper methodology: drop best and worst, average
    // the rest). File reads go through the OS cache in all paths, which
    // is exactly the restart scenario that matters. Engines escape the
    // timed closure so their first answer can be verified afterwards.
    let engines: std::sync::Mutex<Vec<Engine>> = std::sync::Mutex::new(Vec::new());
    let cold = measure(args.runs, || {
        let text = std::fs::read_to_string(&nt_path).expect("read .nt");
        engines.lock().expect("lock").push(cold_start(&text));
    });
    let snap = measure(args.runs, || {
        engines.lock().expect("lock").push(snapshot_start(&snap_path));
    });
    let mmap = measure(args.runs, || {
        engines.lock().expect("lock").push(mmap_start(&snap_path));
    });
    let engines = engines.into_inner().expect("lock");
    assert!(
        engines.iter().all(|e| first_answer(e) == cold_answer),
        "every started engine must answer byte-identically"
    );
    drop(engines);

    let speedup = cold.as_secs_f64() / snap.as_secs_f64();
    let mmap_speedup = snap.as_secs_f64() / mmap.as_secs_f64();
    let mmap_label = format!("mmap load ({})", mmap_load.mode);
    let mut table = TablePrinter::new(&["startup path", "time (ms)", "speedup"]);
    table.row(&["N-Triples parse + build".into(), fmt_ms(cold), "1.00x".into()]);
    table.row(&["snapshot load".into(), fmt_ms(snap), format!("{speedup:.2}x")]);
    table.row(&[
        mmap_label,
        fmt_ms(mmap),
        format!("{:.2}x", cold.as_secs_f64() / mmap.as_secs_f64()),
    ]);
    print!("{}", table.render());
    println!(
        "snapshot: {snap_bytes} bytes, written in {} ms (one-time, amortised across restarts); \
         mmap vs copy load: {mmap_speedup:.2}x, {} bytes mapped",
        fmt_ms(write_time),
        mmap_load.mapped_bytes
    );

    let mut report = BenchReport::new("coldstart");
    report
        .meta("universities", args.universities)
        .meta("seed", args.seed)
        .meta("runs", args.runs)
        .meta("triples", triples.len())
        .meta("mmap_load_mode", mmap_load.mode)
        .metric_ms("cold_ms", cold)
        .metric_ms("snapshot_ms", snap)
        .metric_ms("mmap_ms", mmap)
        .metric_ms("snapshot_write_ms", write_time)
        .metric("snapshot_bytes", snap_bytes as f64)
        .metric("mapped_bytes", mmap_load.mapped_bytes as f64)
        .metric("snapshot_speedup", speedup)
        .metric("mmap_vs_copy_speedup", mmap_speedup);
    match report.write() {
        Ok(path) => println!("report: {}", path.display()),
        Err(e) => eprintln!("failed to write report: {e}"),
    }

    std::fs::remove_file(&nt_path).ok();
    std::fs::remove_file(&snap_path).ok();

    if let Some(min) = args.min_speedup {
        assert!(
            speedup >= min,
            "snapshot startup is only {speedup:.2}x faster than cold start (need >= {min}x)"
        );
        println!("speedup gate passed: {speedup:.2}x >= {min}x");
    }
    if let Some(min) = args.min_mmap_speedup {
        assert_eq!(
            mmap_load.mode,
            LoadMode::Mmap,
            "--min-mmap-speedup requires a real mmap load, but it fell back to copy"
        );
        assert!(
            mmap_speedup >= min,
            "mmap load is only {mmap_speedup:.2}x faster than the copying load (need >= {min}x)"
        );
        println!("mmap speedup gate passed: {mmap_speedup:.2}x >= {min}x");
    }
}
