//! Partitioned-store harness: parallel sectioned snapshot load versus
//! the single-arena path, plus a shard-local / union query mix with a
//! byte-identity check against the unpartitioned engine.
//!
//! ```text
//! cargo run --release -p eh-bench --bin partition -- --universities 2
//! ```
//!
//! Three measurements:
//!
//! * **load** — the legacy v1 single-arena snapshot (one global
//!   checksum, sequential decode) versus the v2 snapshot of the same
//!   data split into 4 subject shards, loaded with 4 threads (each
//!   shard section decoded and checksum-verified in parallel);
//! * **query mix** — the 12-query LUBM workload on the P = 4 engine at
//!   4 threads versus the P = 1 engine, covering both partitioned
//!   execution strategies (subject-rooted plans run shard-local, the
//!   rest union shard operands through the multiway driver);
//! * **byte identity** — every query's `QueryResult` at P = 4 must
//!   equal the P = 1 cold engine's bytes, asserted before any timing.
//!
//! Emits `BENCH_partition.json` (honouring `$EH_BENCH_OUT`). Pass
//! `--min-speedup X` to exit non-zero unless the sectioned parallel
//! load is at least `X` times faster than the single-arena load (the
//! CI gate uses a conservative X for runner noise).

use std::time::Instant;

use eh_bench::{fmt_ms, measure, BenchReport, TablePrinter};
use eh_lubm::queries::{lubm_query, QUERY_NUMBERS};
use eh_lubm::{generate_store, GeneratorConfig};
use eh_rdf::StoreSnapshot;
use emptyheaded::{Engine, OptFlags, PlannerConfig, RuntimeConfig, SharedStore};

const SHARDS: usize = 4;

struct Args {
    universities: u32,
    runs: usize,
    seed: u64,
    min_speedup: Option<f64>,
}

fn parse_args() -> Args {
    let mut args = Args { universities: 2, runs: 7, seed: 42, min_speedup: None };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| -> f64 {
            argv.get(i + 1)
                .unwrap_or_else(|| panic!("missing value after {}", argv[i]))
                .parse::<f64>()
                .unwrap_or_else(|e| panic!("bad value after {}: {e}", argv[i]))
        };
        match argv[i].as_str() {
            "--universities" | "-u" => args.universities = value(i) as u32,
            "--runs" | "-r" => args.runs = value(i) as usize,
            "--seed" | "-s" => args.seed = value(i) as u64,
            "--min-speedup" => args.min_speedup = Some(value(i)),
            other => {
                eprintln!(
                    "unknown argument {other}; expected --universities N, --runs K, --seed S, \
                     --min-speedup X"
                );
                std::process::exit(2);
            }
        }
        i += 2;
    }
    assert!(args.runs >= 3, "need at least 3 runs to drop best and worst");
    args
}

fn engine_over(store: eh_rdf::TripleStore, threads: usize) -> Engine {
    Engine::with_config(
        SharedStore::new(store),
        PlannerConfig::with_flags(OptFlags::all())
            .with_runtime(RuntimeConfig::with_threads(threads)),
    )
}

fn main() {
    let args = parse_args();
    let config = GeneratorConfig::tiny(args.universities).with_seed(args.seed);
    let base = generate_store(&config);
    let triples = base.num_triples();
    println!("LUBM tiny({}) seed {}: {triples} triples", args.universities, args.seed);

    // One snapshot per layout, same logical data: v1 is the single-arena
    // monolith (P = 1 only), v2 carries one independently checksummed
    // section per subject shard.
    // Decode workers for the sectioned load: machine-sized, capped at the
    // shard count — on a single-core runner the fan-out inlines (no spawn
    // tax) and the sectioned path still wins on decode work alone.
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get()).min(SHARDS);
    println!("sectioned load uses {threads} decode thread(s)");

    let mut split = base.clone();
    split.repartition(SHARDS);
    let dir = std::env::temp_dir();
    let v1_path = dir.join(format!("eh-partition-{}-v1.snap", std::process::id()));
    let v2_path = dir.join(format!("eh-partition-{}-v2.snap", std::process::id()));
    let v1_bytes = {
        let f = std::io::BufWriter::new(std::fs::File::create(&v1_path).expect("create v1"));
        StoreSnapshot::write_v1(&base, &StoreSnapshot::hot_tries(&base), f).expect("write v1")
    };
    let v2_bytes =
        StoreSnapshot::write_to_path(&split, &StoreSnapshot::hot_tries(&split), &v2_path)
            .expect("write v2");
    println!("snapshots: v1 single-arena {v1_bytes} bytes, v2 {SHARDS}-shard {v2_bytes} bytes");

    // Byte-identity across the whole workload before any timing: the
    // P = 4 engine (union and shard-local paths alike) must answer
    // exactly like a cold unpartitioned engine.
    let p1 = engine_over(base.clone(), 1);
    let p4 = engine_over(split.clone(), SHARDS);
    let queries: Vec<_> =
        QUERY_NUMBERS.iter().map(|&n| (n, lubm_query(n, &base).expect("workload query"))).collect();
    for (n, q) in &queries {
        let reference = p1.run(q).expect("P=1 run");
        assert_eq!(p4.run(q).expect("P=4 run"), reference, "query {n} diverged at P={SHARDS}");
    }
    println!("byte identity: all {} workload queries match P=1", queries.len());

    // Timed loads (paper methodology: drop best and worst, average the
    // rest; files come through the OS cache in both paths — the restart
    // scenario that matters).
    let load_v1 = measure(args.runs, || {
        let snap = StoreSnapshot::read_from_path(&v1_path).expect("v1 loads");
        assert_eq!(snap.store.partitions(), 1);
    });
    let load_v2 = measure(args.runs, || {
        let snap = StoreSnapshot::read_from_path_with(&v2_path, threads).expect("v2 loads");
        assert_eq!(snap.store.partitions(), SHARDS);
    });
    let load_speedup = load_v1.as_secs_f64() / load_v2.as_secs_f64();

    // Timed query mix, warm engines (tries were built by the identity
    // pass): partitioned execution must not tax the workload.
    let mix_p1 = measure(args.runs, || {
        for (_, q) in &queries {
            let t0 = Instant::now();
            p1.run(q).expect("P=1 run");
            std::hint::black_box(t0.elapsed());
        }
    });
    let mix_p4 = measure(args.runs, || {
        for (_, q) in &queries {
            let t0 = Instant::now();
            p4.run(q).expect("P=4 run");
            std::hint::black_box(t0.elapsed());
        }
    });

    let mut table = TablePrinter::new(&["measurement", "time (ms)", "vs baseline"]);
    table.row(&["v1 single-arena load".into(), fmt_ms(load_v1), "1.00x".into()]);
    table.row(&[
        format!("v2 {SHARDS}-shard parallel load"),
        fmt_ms(load_v2),
        format!("{load_speedup:.2}x"),
    ]);
    table.row(&["LUBM mix, P=1".into(), fmt_ms(mix_p1), "1.00x".into()]);
    table.row(&[
        format!("LUBM mix, P={SHARDS} ({SHARDS} threads)"),
        fmt_ms(mix_p4),
        format!("{:.2}x", mix_p1.as_secs_f64() / mix_p4.as_secs_f64()),
    ]);
    print!("{}", table.render());

    let mut report = BenchReport::new("partition");
    report
        .meta("universities", args.universities)
        .meta("seed", args.seed)
        .meta("runs", args.runs)
        .meta("shards", SHARDS)
        .meta("load_threads", threads)
        .metric("triples", triples as f64)
        .metric("snapshot_v1_bytes", v1_bytes as f64)
        .metric("snapshot_v2_bytes", v2_bytes as f64)
        .metric_ms("load_single_arena_ms", load_v1)
        .metric_ms("load_sectioned_parallel_ms", load_v2)
        .metric("load_speedup", load_speedup)
        .metric_ms("lubm_mix_p1_ms", mix_p1)
        .metric_ms("lubm_mix_p4_ms", mix_p4)
        .metric("byte_identity", 1.0);
    let path = report.write().expect("report writes");
    println!("wrote {}", path.display());

    std::fs::remove_file(&v1_path).ok();
    std::fs::remove_file(&v2_path).ok();

    if let Some(min) = args.min_speedup {
        assert!(
            load_speedup >= min,
            "sectioned parallel load is only {load_speedup:.2}x faster than single-arena \
             (need >= {min}x)"
        );
        println!("load-speedup gate passed: {load_speedup:.2}x >= {min}x");
    }
}
