//! Regenerates **Table I** of Aberger et al. (ICDE 2016): the relative
//! speedup of each classic optimization on LUBM queries 1, 2, 4, 7, 8, 14.
//!
//! The paper accumulates optimizations left to right — `+Layout` compares
//! mixed set layouts against uint-arrays-only, `+Attribute` adds
//! within-node selection reordering, `+GHD` adds across-node selection
//! pushdown, `+Pipelining` adds root streaming — each cell reporting the
//! speedup over the previous column's configuration. "-" marks
//! optimizations that leave the physical plan unchanged (the paper: "the
//! optimization has no effect on the given query").
//!
//! ```text
//! cargo run --release -p eh-bench --bin table1 -- --universities 10
//! ```

use eh_bench::{measure, HarnessArgs, TablePrinter};
use eh_lubm::queries::lubm_query;
use eh_lubm::{generate_store, GeneratorConfig};
use emptyheaded::{Engine, OptFlags, SharedStore};

/// The queries Table I reports.
const QUERIES: [u32; 6] = [1, 2, 4, 7, 8, 14];
const STEPS: [&str; 4] = ["+Layout", "+Attribute", "+GHD", "+Pipelining"];

fn main() {
    let args = HarnessArgs::from_env();
    let cfg = GeneratorConfig::scale(args.universities).with_seed(args.seed);
    eprintln!("generating LUBM({}) ...", args.universities);
    let store = SharedStore::new(generate_store(&cfg));
    let stats = store.read().stats();
    println!(
        "Table I reproduction — LUBM({}) = {} triples, {} runs averaged (best/worst dropped)",
        args.universities, stats.triples, args.runs
    );

    let mut table = TablePrinter::new(&["Query", "+Layout", "+Attribute", "+GHD", "+Pipelining"]);
    for qn in QUERIES {
        let q = lubm_query(qn, &store.read()).expect("workload query");
        // Time each cumulative configuration; planning (query compilation)
        // is excluded per the paper's methodology.
        let mut times = Vec::new();
        let mut cards = Vec::new();
        let mut plans = Vec::new();
        for k in 0..=4 {
            let engine = Engine::new(store.clone(), OptFlags::cumulative(k));
            let plan = engine.plan(&q).expect("plannable");
            engine.warm(&q).expect("warm");
            let mut card = 0;
            let t = measure(args.runs, || {
                card = engine.run_plan(&q, &plan).cardinality();
            });
            times.push(t);
            cards.push(card);
            plans.push(plan);
        }
        assert!(
            cards.windows(2).all(|w| w[0] == w[1]),
            "Q{qn}: configurations disagree: {cards:?}"
        );
        let mut cells = vec![format!("Q{qn}")];
        for k in 0..4 {
            // "-" when the optimization did not change the physical plan.
            let unchanged = plans[k].global_order == plans[k + 1].global_order
                && plans[k].ghd == plans[k + 1].ghd
                && plans[k].pipelined == plans[k + 1].pipelined
                && STEPS[k] != "+Layout"; // layouts change data, not the plan
            if unchanged {
                cells.push("-".to_string());
            } else {
                let f = times[k].as_secs_f64() / times[k + 1].as_secs_f64();
                cells.push(format!("{f:.2}x"));
            }
        }
        table.row(&cells);
        eprintln!(
            "Q{qn}: {} tuples; none={}ms all={}ms",
            cards[0],
            times[0].as_secs_f64() * 1e3,
            times[4].as_secs_f64() * 1e3
        );
    }
    println!("{}", table.render());
    println!("(cell k = runtime of configuration k-1 divided by configuration k; cumulative left to right)");
}
