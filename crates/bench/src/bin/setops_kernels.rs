//! Intersection-kernel microbench + SIMD byte-identity gate.
//!
//! ```text
//! cargo run --release -p eh-bench --bin setops_kernels
//! cargo run --release -p eh-bench --bin setops_kernels -- --quick --min-speedup 1.5
//! ```
//!
//! Measures the adaptive k-way driver ([`eh_setops::intersect_all_into`])
//! against the pre-PR pairwise fold
//! ([`eh_setops::intersect_all_refs_fold`], preserved verbatim with its
//! scalar kernels) on four canonical multiway workloads, and checks every
//! SIMD kernel byte-identical to its portable fallback at every level
//! this CPU supports.
//!
//! * `--quick` shrinks the workloads for a CI smoke run;
//! * `--min-speedup X` exits non-zero unless **both** gated workloads
//!   (skewed uint∩uint and bitset∩bitset) reach `X`. The CI job gates at
//!   1.5 (the paper-claim floor; local runs measure well above it — see
//!   the README "Performance" section). The flag exists so a noisy
//!   runner can be accommodated without editing the workflow;
//! * results land in `BENCH_setops_kernels.json` (honouring
//!   `$EH_BENCH_OUT`).
//!
//! Any byte-identity mismatch exits non-zero regardless of flags.

use eh_bench::{fmt_ms, measure, synth_set, BenchReport, TablePrinter};
use eh_setops::{
    and_words_k_count_with, and_words_k_into_with, available_levels, detected_level,
    intersect_all_into, intersect_all_refs_fold, intersect_count_all_refs,
    intersect_merge_count_v_with, intersect_merge_v_with, simd_level, IntersectScratch, Layout,
    Set, SetRef, SimdLevel,
};

struct Args {
    quick: bool,
    runs: usize,
    min_speedup: Option<f64>,
}

fn parse_args() -> Args {
    let mut args = Args { quick: false, runs: 7, min_speedup: None };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--quick" => {
                args.quick = true;
                args.runs = 5;
                i += 1;
            }
            "--runs" | "-r" => {
                args.runs = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("bad value after {}", argv[i]));
                i += 2;
            }
            "--min-speedup" => {
                args.min_speedup = Some(
                    argv.get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("bad value after {}", argv[i])),
                );
                i += 2;
            }
            other => {
                eprintln!("unknown argument {other}; expected --quick, --runs K, --min-speedup X");
                std::process::exit(2);
            }
        }
    }
    assert!(args.runs >= 3, "need at least 3 runs to drop best and worst");
    args
}

/// One multiway workload: named operand sets in forced layouts.
struct Workload {
    name: &'static str,
    /// Participates in the `--min-speedup` gate.
    gated: bool,
    sets: Vec<Set>,
}

/// Sorted-unique union of two sorted-unique slices.
fn union_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() || j < b.len() {
        match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) if x == y => {
                out.push(x);
                i += 1;
                j += 1;
            }
            (Some(&x), Some(&y)) if x < y => {
                out.push(x);
                i += 1;
            }
            (Some(_), Some(&y)) => {
                out.push(y);
                j += 1;
            }
            (Some(&x), None) => {
                out.push(x);
                i += 1;
            }
            (None, Some(&y)) => {
                out.push(y);
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    out
}

fn workloads(quick: bool) -> Vec<Workload> {
    let scale = if quick { 1usize } else { 5 };
    let big = 200_000 * scale;
    let mk = |vals: &[u32], l: Layout| Set::from_sorted_with(vals, l);
    // Skewed uint workload, RDF-shaped: a selective predicate's subject
    // set (1:24 of the big predicates) whose elements mostly *do* appear
    // in the big predicates — so the running intersection never shrinks
    // below the pre-PR gallop ratio and the pre-PR fold pays a scalar
    // full-length merge per operand. The adaptive driver probes the
    // small side only.
    let large1 = synth_set(big, 3, 7);
    let small: Vec<u32> = large1.iter().copied().step_by(24).collect();
    let large2 = union_sorted(&synth_set(big, 3, 13), &small);
    let large3 = union_sorted(&synth_set(big, 3, 29), &small);
    vec![
        Workload {
            name: "uint_skewed",
            gated: true,
            sets: vec![
                mk(&small, Layout::UintArray),
                mk(&large1, Layout::UintArray),
                mk(&large2, Layout::UintArray),
                mk(&large3, Layout::UintArray),
            ],
        },
        Workload {
            // Density ~0.15 (well above the 1/256 bitset threshold but
            // with a sparse 3-way result), so the cost is the AND pass
            // itself — the pre-PR fold pays two scalar passes plus two
            // materialised bitsets with rank directories.
            name: "bitset_3way",
            gated: true,
            sets: vec![
                mk(&synth_set(big, 12, 7), Layout::Bitset),
                mk(&synth_set(big, 12, 13), Layout::Bitset),
                mk(&synth_set(big, 12, 29), Layout::Bitset),
            ],
        },
        Workload {
            name: "uint_balanced_3way",
            gated: false,
            sets: vec![
                mk(&synth_set(big, 4, 7), Layout::UintArray),
                mk(&synth_set(big, 4, 13), Layout::UintArray),
                mk(&synth_set(big * 2 / 3, 6, 29), Layout::UintArray),
            ],
        },
        Workload {
            name: "mixed_4way",
            gated: false,
            sets: vec![
                mk(&synth_set(big / 50, 160, 11), Layout::UintArray),
                mk(&synth_set(big, 3, 7), Layout::Bitset),
                mk(&synth_set(big, 3, 13), Layout::UintArray),
                mk(&synth_set(big, 3, 29), Layout::Bitset),
            ],
        },
    ]
}

/// Byte-identity: every vectorized kernel must reproduce the portable
/// fallback exactly at every level this CPU supports. Returns the number
/// of mismatches (0 = pass).
fn byte_identity_check() -> usize {
    let mut mismatches = 0usize;
    let a = synth_set(50_000, 3, 7);
    let b = synth_set(40_000, 4, 13);
    let words_a: Vec<u32> = synth_set(20_000, 7, 5);
    let words_b: Vec<u32> = synth_set(20_000, 7, 9);
    let words_c: Vec<u32> = synth_set(20_000, 7, 21);
    let mut merged_ref = Vec::new();
    intersect_merge_v_with(SimdLevel::Portable, &a, &b, &mut merged_ref);
    let srcs = [&words_a[..], &words_b[..], &words_c[..]];
    let mut and_ref = Vec::new();
    let and_count = and_words_k_into_with(SimdLevel::Portable, &srcs, &mut and_ref);
    for &level in available_levels() {
        let mut merged = Vec::new();
        intersect_merge_v_with(level, &a, &b, &mut merged);
        if merged != merged_ref || intersect_merge_count_v_with(level, &a, &b) != merged_ref.len() {
            eprintln!("BYTE-IDENTITY FAILURE: uint merge kernel at {level}");
            mismatches += 1;
        }
        let mut anded = Vec::new();
        if and_words_k_into_with(level, &srcs, &mut anded) != and_count
            || anded != and_ref
            || and_words_k_count_with(level, &srcs) != and_count
        {
            eprintln!("BYTE-IDENTITY FAILURE: word-AND kernel at {level}");
            mismatches += 1;
        }
    }
    println!(
        "byte-identity: {} kernels x {} levels checked, {} mismatches",
        2,
        available_levels().len(),
        mismatches
    );
    mismatches
}

fn main() {
    let args = parse_args();
    println!(
        "setops kernel microbench — simd level {} (detected {}), {} runs averaged{}",
        simd_level(),
        detected_level(),
        args.runs,
        if args.quick { ", quick mode" } else { "" }
    );

    let mismatches = byte_identity_check();

    let mut report = BenchReport::new("setops_kernels");
    report
        .meta("simd_level", simd_level())
        .meta("detected_level", detected_level())
        .meta("mode", if args.quick { "quick" } else { "full" })
        .metric("byte_identity_mismatches", mismatches as f64);

    let mut table =
        TablePrinter::new(&["Workload", "Fold (ms)", "Adaptive (ms)", "Count (ms)", "Speedup"]);
    let mut gate_failures: Vec<(String, f64)> = Vec::new();
    for w in workloads(args.quick) {
        let refs: Vec<SetRef<'_>> = w.sets.iter().map(|s| s.as_ref()).collect();
        // Correctness before speed: adaptive and fold must agree here too.
        let mut scratch = IntersectScratch::new();
        let adaptive_vals = intersect_all_into(&refs, &mut scratch).to_vec();
        let fold_vals = intersect_all_refs_fold(&refs).expect("non-empty input").to_vec();
        assert_eq!(adaptive_vals, fold_vals, "{}: adaptive diverged from fold", w.name);
        assert_eq!(intersect_count_all_refs(&refs), adaptive_vals.len(), "{}: count", w.name);

        // Both sides are measured through to *consumed values* (a
        // checksum over the result elements): Generic-Join iterates every
        // intersection it computes, so a kernel that leaves its result
        // encoded (the fold's bitset arm) must pay its decode here just
        // as the executor would.
        let fold_t = measure(args.runs, || {
            let set = intersect_all_refs_fold(std::hint::black_box(&refs)).expect("non-empty");
            std::hint::black_box(set.iter().map(u64::from).sum::<u64>());
        });
        let adaptive_t = measure(args.runs, || {
            let vals = intersect_all_into(std::hint::black_box(&refs), &mut scratch);
            std::hint::black_box(vals.iter().map(|&v| v as u64).sum::<u64>());
        });
        let count_t = measure(args.runs, || {
            std::hint::black_box(intersect_count_all_refs(std::hint::black_box(&refs)));
        });
        let speedup = fold_t.as_secs_f64() / adaptive_t.as_secs_f64().max(f64::EPSILON);
        table.row(&[
            format!("{}{}", w.name, if w.gated { " *" } else { "" }),
            fmt_ms(fold_t),
            fmt_ms(adaptive_t),
            fmt_ms(count_t),
            format!("{speedup:.2}x"),
        ]);
        report
            .metric_ms(&format!("{}.fold_ms", w.name), fold_t)
            .metric_ms(&format!("{}.adaptive_ms", w.name), adaptive_t)
            .metric_ms(&format!("{}.count_ms", w.name), count_t)
            .metric(&format!("{}.speedup", w.name), speedup);
        if w.gated {
            if let Some(min) = args.min_speedup {
                if speedup < min {
                    gate_failures.push((w.name.to_string(), speedup));
                }
            }
        }
    }
    println!("\n{}\n(* = gated workload)", table.render());

    match report.write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH json: {e}"),
    }

    if mismatches > 0 {
        eprintln!("FAIL: {mismatches} SIMD/fallback byte-identity mismatches");
        std::process::exit(1);
    }
    if let Some(min) = args.min_speedup {
        if gate_failures.is_empty() {
            println!("gate: all gated workloads >= {min:.2}x over the pre-PR fold");
        } else {
            for (name, s) in &gate_failures {
                eprintln!("FAIL: {name} speedup {s:.2}x < required {min:.2}x");
            }
            std::process::exit(1);
        }
    }
}
