//! Query-service throughput harness: QPS of the LUBM mix through
//! [`QueryService`], cold (empty caches — every request pays planning and
//! join execution) versus warm (plan + result caches populated), with
//! concurrent client sessions.
//!
//! Warm answers are checked byte-identical to their cold counterparts in
//! a dedicated untimed verification pass (single- and multi-session)
//! before the timed loops run — the cache must be invisible except
//! through latency and hit counters.
//!
//! ```text
//! cargo run --release -p eh-bench --bin throughput -- --universities 1
//! EH_THREADS=4 cargo run --release -p eh-bench --bin throughput
//! ```

use std::time::Instant;

use eh_bench::{BenchReport, HarnessArgs, TablePrinter};
use eh_lubm::queries::{lubm_sparql, QUERY_NUMBERS};
use eh_lubm::{generate_store, GeneratorConfig};
use eh_par::RuntimeConfig;
use eh_srv::{respond, QueryService, ServiceConfig};
use emptyheaded::{OptFlags, PlannerConfig};

const SESSION_COUNTS: [usize; 3] = [1, 4, 8];

fn main() {
    let args = HarnessArgs::from_env();
    let runtime = RuntimeConfig::from_env();
    let cfg = GeneratorConfig::scale(args.universities).with_seed(args.seed);
    eprintln!("generating LUBM({}) ...", args.universities);
    let store = generate_store(&cfg);
    let mix: Vec<String> =
        QUERY_NUMBERS.iter().map(|&n| lubm_sparql(n).expect("workload query")).collect();
    println!(
        "Service throughput — LUBM({}) = {} triples, {} engine threads, {}-query mix",
        args.universities,
        store.stats().triples,
        runtime.num_threads,
        mix.len()
    );

    let service = QueryService::new(
        store.clone(),
        ServiceConfig {
            planner: PlannerConfig::with_flags(OptFlags::all()).with_runtime(runtime),
            result_cache_bytes: ServiceConfig::DEFAULT_RESULT_CACHE_BYTES,
            plan_cache_entries: ServiceConfig::DEFAULT_PLAN_CACHE_ENTRIES,
            server_sessions: ServiceConfig::DEFAULT_SERVER_SESSIONS,
            record_metrics: true,
            slow_query_ms: None,
        },
    );

    // Cold pass: every request parses, plans, and executes. Responses are
    // kept as the reference bytes for the verification pass.
    let t0 = Instant::now();
    let reference: Vec<String> =
        mix.iter().map(|q| respond(&service, &format!("QUERY {q}"))).collect();
    let cold = t0.elapsed();

    // Untimed verification: warm (cache-served) answers must be
    // byte-identical to cold ones, from concurrent sessions too, before
    // any warm number is trusted.
    std::thread::scope(|scope| {
        for s in 0..*SESSION_COUNTS.iter().max().unwrap() {
            let (service, mix, reference) = (&service, &mix, &reference);
            scope.spawn(move || {
                for i in 0..mix.len() {
                    let idx = (i + s) % mix.len();
                    let got = respond(service, &format!("QUERY {}", mix[idx]));
                    assert_eq!(
                        got, reference[idx],
                        "warm response diverged from cold (query index {idx})"
                    );
                }
            });
        }
    });

    let mut report = BenchReport::new("throughput");
    report
        .meta("universities", args.universities)
        .meta("seed", args.seed)
        .meta("engine_threads", runtime.num_threads)
        .metric("cold_qps", mix.len() as f64 / cold.as_secs_f64());
    let mut table = TablePrinter::new(&["Phase", "Sessions", "Requests", "QPS"]);
    table.row(&[
        "cold".into(),
        "1".into(),
        mix.len().to_string(),
        format!("{:.0}", mix.len() as f64 / cold.as_secs_f64()),
    ]);

    // Warm passes, timed: the mix repeated from N concurrent sessions
    // (correctness was established above, so the loop only answers).
    for sessions in SESSION_COUNTS {
        let rounds = args.runs;
        let t0 = Instant::now();
        std::thread::scope(|scope| {
            for s in 0..sessions {
                let (service, mix) = (&service, &mix);
                scope.spawn(move || {
                    for round in 0..rounds {
                        for i in 0..mix.len() {
                            let idx = (i + s + round) % mix.len();
                            let got = respond(service, &format!("QUERY {}", mix[idx]));
                            std::hint::black_box(&got);
                        }
                    }
                });
            }
        });
        let elapsed = t0.elapsed();
        let requests = sessions * rounds * mix.len();
        table.row(&[
            "warm".into(),
            sessions.to_string(),
            requests.to_string(),
            format!("{:.0}", requests as f64 / elapsed.as_secs_f64()),
        ]);
        report.metric(&format!("warm_qps.s{sessions}"), requests as f64 / elapsed.as_secs_f64());
    }
    println!("\n{}", table.render());

    let stats = service.stats();
    println!(
        "caches: plan {}/{} hits, result {}/{} hits, {} entries / {} bytes, epoch {}",
        stats.plan_hits,
        stats.plan_hits + stats.plan_misses,
        stats.result_hits,
        stats.result_hits + stats.result_misses,
        stats.result_cache_entries,
        stats.result_cache_bytes,
        stats.epoch
    );
    assert!(stats.result_hits > 0, "warm passes must hit the result cache");
    report
        .metric("plan_hits", stats.plan_hits as f64)
        .metric("result_hits", stats.result_hits as f64)
        .metric("result_cache_bytes", stats.result_cache_bytes as f64);
    match report.write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH json: {e}"),
    }
}
