//! Regenerates **Figure 3** of Aberger et al. (ICDE 2016): the "across
//! nodes" transformation of LUBM query 4's GHD. Without the selection-
//! aware steps the high-selectivity atoms (`rdf:type AssociateProfessor`,
//! `worksFor Department0`) sit near the root; with them they are pushed to
//! maximal depth so the bottom-up pass filters intermediates early.

use eh_bench::HarnessArgs;
use eh_ghd::selection_depth;
use eh_lubm::queries::{lubm_query, lubm_sparql};
use eh_lubm::{generate_store, GeneratorConfig};
use eh_query::Hypergraph;
use emptyheaded::{Engine, OptFlags};

fn main() {
    let args = HarnessArgs::from_env();
    let store = generate_store(&GeneratorConfig::tiny(args.universities.clamp(1, 2)));
    let q = lubm_query(4, &store).expect("query 4");
    let h = Hypergraph::from_query(&q);
    let selected: Vec<bool> = (0..q.num_vars()).map(|v| q.is_selected(v)).collect();

    println!("Figure 3 reproduction: across-node selection pushdown on LUBM query 4\n");
    println!("{}\n", lubm_sparql(4).unwrap());

    let without = Engine::new(store.clone(), OptFlags { ghd_pushdown: false, ..OptFlags::all() });
    let plan_without = without.plan(&q).expect("plannable");
    println!("=== left of Figure 3: GHD without across-node pushdown ===");
    println!("{}", plan_without.render(&q));
    println!("selection depth: {}\n", selection_depth(&plan_without.ghd, &h, &selected));

    let with = Engine::new(store.clone(), OptFlags::all());
    let plan_with = with.plan(&q).expect("plannable");
    println!("=== right of Figure 3: GHD with across-node pushdown (§III-B2) ===");
    println!("{}", plan_with.render(&q));
    println!("selection depth: {}", selection_depth(&plan_with.ghd, &h, &selected));

    let a = without.run_plan(&q, &plan_without).cardinality();
    let b = with.run_plan(&q, &plan_with).cardinality();
    assert_eq!(a, b, "both plans must agree");
    println!("\nquery 4 result cardinality at this scale: {b} (identical under both plans)");
}
