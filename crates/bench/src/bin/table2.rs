//! Regenerates **Table II** of Aberger et al. (ICDE 2016): runtime of the
//! best-performing engine (milliseconds) and the relative runtime of each
//! engine on the 12-query LUBM workload.
//!
//! Engines: EmptyHeaded (this repo's WCOJ engine, all optimizations), and
//! the four simulated comparators of `eh-baselines` (TripleBit-, RDF-3X-,
//! MonetDB-, LogicBlox-style). Before timing, the harness verifies all
//! five produce identical result sets.
//!
//! ```text
//! cargo run --release -p eh-bench --bin table2 -- --universities 10
//! ```

use std::collections::BTreeSet;
use std::time::Duration;

use eh_baselines::{LogicBloxStyle, MonetDbStyle, QueryEngine, Rdf3xStyle, TripleBitStyle};
use eh_bench::{fmt_ms, fmt_rel, measure, HarnessArgs, TablePrinter};
use eh_lubm::queries::{lubm_query, QUERY_NUMBERS};
use eh_lubm::{generate_store, GeneratorConfig};
use emptyheaded::{Engine, OptFlags};

fn main() {
    let args = HarnessArgs::from_env();
    let cfg = GeneratorConfig::scale(args.universities).with_seed(args.seed);
    eprintln!("generating LUBM({}) ...", args.universities);
    let store = generate_store(&cfg);
    let stats = store.stats();
    println!(
        "Table II reproduction — LUBM({}) = {} triples, {} runs averaged (best/worst dropped)",
        args.universities, stats.triples, args.runs
    );

    eprintln!("building engines (load time, excluded from query timing) ...");
    let eh = Engine::new(store.clone(), OptFlags::all());
    let triplebit = TripleBitStyle::new(&store);
    let rdf3x = Rdf3xStyle::new(&store);
    let monetdb = MonetDbStyle::new(&store);
    let logicblox = LogicBloxStyle::new(&store);

    let mut table = TablePrinter::new(&[
        "Query",
        "Best(ms)",
        "EH",
        "TripleBit",
        "RDF-3X",
        "MonetDB",
        "LogicBlox",
    ]);
    for qn in QUERY_NUMBERS {
        let q = lubm_query(qn, &store).expect("workload query");

        // Correctness gate: every engine must agree before we time it.
        let plan = eh.plan(&q).expect("plannable");
        eh.warm(&q).expect("warm");
        let reference: BTreeSet<Vec<u32>> =
            eh.run_plan(&q, &plan).iter().map(|r| r.to_vec()).collect();
        let card = reference.len();
        let baselines: [&dyn QueryEngine; 4] = [&triplebit, &rdf3x, &monetdb, &logicblox];
        for engine in baselines {
            let got: BTreeSet<Vec<u32>> = engine.execute(&q).rows().map(|r| r.to_vec()).collect();
            assert_eq!(got, reference, "Q{qn}: {} disagrees with EmptyHeaded", engine.name());
        }

        // Timing. Planning (compilation) is excluded for the WCOJ engines
        // per the paper; the pairwise engines plan greedily inline.
        let t_eh = measure(args.runs, || {
            let _ = eh.run_plan(&q, &plan);
        });
        let time_of = |engine: &dyn QueryEngine| {
            measure(args.runs, || {
                let _ = engine.execute(&q);
            })
        };
        let t_tb = time_of(&triplebit);
        let t_3x = time_of(&rdf3x);
        let t_mdb = time_of(&monetdb);
        let t_lb = time_of(&logicblox);

        let best: Duration = [t_eh, t_tb, t_3x, t_mdb, t_lb].into_iter().min().unwrap();
        table.row(&[
            format!("Q{qn}"),
            fmt_ms(best),
            fmt_rel(t_eh, best),
            fmt_rel(t_tb, best),
            fmt_rel(t_3x, best),
            fmt_rel(t_mdb, best),
            fmt_rel(t_lb, best),
        ]);
        eprintln!("Q{qn}: {card} tuples verified across all engines");
    }
    println!("{}", table.render());
    println!("(1.00x marks the best engine per query; runtime in ms for the best engine)");
}
