//! Update-workload harness: steady-state query throughput of the serving
//! tier **while a writer applies batched inserts**, plus the cost of the
//! update path itself (per-batch apply latency, tries rebuilt).
//!
//! Four phases, each over the same LUBM store and query mix:
//!
//! 1. `read-only` — reader threads only, warm caches: the baseline QPS.
//! 2. `under-writes` — the same readers racing one writer that applies
//!    a batch of fresh triples every `--write-every-ms` milliseconds;
//!    every batch invalidates every derived cache, so this measures the
//!    real cost of churn.
//! 3. an apply-path comparison on the hot predicate: per-batch latency
//!    of the **staged** path (deltas overlay the frozen base, O(batch))
//!    vs. the **rebuild** path (compaction forced every batch, so each
//!    apply re-freezes the whole predicate, O(predicate)), plus the
//!    one-time pause of folding everything staged. `--min-speedup X`
//!    turns the ratio into a gate: exit non-zero below `X`.
//! 4. a correctness epilogue: the final answers must be byte-identical
//!    to a cold engine over the final store contents.
//!
//! Emits `BENCH_updates.json` (into `$EH_BENCH_OUT` if set) with the QPS,
//! per-batch latency, speedup, and compaction-pause numbers.
//!
//! ```text
//! cargo run --release -p eh-bench --bin updates -- --universities 1
//! EH_THREADS=4 cargo run --release -p eh-bench --bin updates -- --min-speedup 5
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use eh_bench::{measure, BenchReport, TablePrinter};
use eh_lubm::queries::{lubm_sparql, QUERY_NUMBERS};
use eh_lubm::{generate_store, pred_iri, GeneratorConfig, Predicate};
use eh_par::RuntimeConfig;
use eh_rdf::{Term, Triple};
use eh_srv::{respond, QueryService, ServiceConfig, SharedStore, UpdateBatch};
use emptyheaded::{OptFlags, PlannerConfig};

const READERS: usize = 4;
const PHASE_MS: u64 = 1500;
const WRITE_EVERY_MS: u64 = 50;
const BATCH_TRIPLES: usize = 64;
/// Batch size for the staged-vs-rebuild gate: small against any LUBM
/// scale, so the staged path's cost is O(batch) while the rebuild path
/// stays O(predicate) — the gap the gate defends.
const GATE_BATCH_TRIPLES: usize = 100;

#[derive(Debug, Clone, Copy)]
struct Args {
    universities: u32,
    runs: usize,
    seed: u64,
    /// Minimum staged-over-rebuild apply speedup; below it, exit 1.
    min_speedup: Option<f64>,
}

fn parse_args() -> Args {
    let mut args = Args { universities: 5, runs: 7, seed: 42, min_speedup: None };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| {
            argv.get(i + 1)
                .unwrap_or_else(|| panic!("missing value after {}", argv[i]))
                .parse::<f64>()
                .unwrap_or_else(|e| panic!("bad value after {}: {e}", argv[i]))
        };
        match argv[i].as_str() {
            "--universities" | "-u" => args.universities = value(i) as u32,
            "--runs" | "-r" => args.runs = value(i) as usize,
            "--seed" | "-s" => args.seed = value(i) as u64,
            "--min-speedup" => args.min_speedup = Some(value(i)),
            other => {
                eprintln!(
                    "unknown argument {other}; expected --universities N, --runs K, --seed S, \
                     --min-speedup X"
                );
                std::process::exit(2);
            }
        }
        i += 2;
    }
    assert!(args.runs >= 3, "need at least 3 runs to drop best and worst");
    args
}

/// A batch of fresh student→course triples (new subjects every call, so
/// every batch is real change on one hot predicate).
fn write_batch(round: u64) -> UpdateBatch {
    let takes = pred_iri(Predicate::TakesCourse);
    let mut batch = UpdateBatch::new();
    for i in 0..BATCH_TRIPLES {
        batch.insert(Triple::new(
            Term::iri(format!("http://bench/update-student-{round}-{i}")),
            Term::iri(&*takes),
            Term::iri(format!("http://bench/update-course-{}", i % 8)),
        ));
    }
    batch
}

/// Run the reader loop until `stop`, counting answered requests.
fn read_loop(svc: &QueryService, mix: &[String], offset: usize, stop: &AtomicBool) -> u64 {
    let mut answered = 0u64;
    let mut i = offset;
    while !stop.load(Ordering::Acquire) {
        let request = &mix[i % mix.len()];
        let response = respond(svc, request);
        assert!(response.starts_with("OK "), "reader got an error: {response}");
        std::hint::black_box(&response);
        answered += 1;
        i += 1;
    }
    answered
}

fn timed_phase(
    svc: &QueryService,
    mix: &[String],
    duration: Duration,
    writer: Option<(&AtomicU64, Duration)>,
) -> (u64, u64, Duration) {
    let stop = AtomicBool::new(false);
    let answered = AtomicU64::new(0);
    let batches = AtomicU64::new(0);
    let mut apply_time = Duration::ZERO;
    std::thread::scope(|scope| {
        for r in 0..READERS {
            let (svc, mix, stop, answered) = (svc, mix, &stop, &answered);
            scope.spawn(move || {
                answered.fetch_add(read_loop(svc, mix, r, stop), Ordering::Relaxed);
            });
        }
        if let Some((round_counter, every)) = writer {
            let (stop, batches, apply_time) = (&stop, &batches, &mut apply_time);
            scope.spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    let round = round_counter.fetch_add(1, Ordering::Relaxed);
                    let t0 = Instant::now();
                    let summary = svc.update(write_batch(round));
                    *apply_time += t0.elapsed();
                    assert_eq!(summary.inserted, BATCH_TRIPLES, "batch must be fresh triples");
                    batches.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(every);
                }
            });
        }
        std::thread::sleep(duration);
        stop.store(true, Ordering::Release);
    });
    (answered.load(Ordering::Relaxed), batches.load(Ordering::Relaxed), apply_time)
}

/// A fresh `GATE_BATCH_TRIPLES`-triple batch on the hot predicate, in a
/// namespace disjoint from [`write_batch`]'s so gate batches are always
/// real change.
fn gate_batch(round: u64) -> UpdateBatch {
    let takes = pred_iri(Predicate::TakesCourse);
    let mut batch = UpdateBatch::new();
    for i in 0..GATE_BATCH_TRIPLES {
        batch.insert(Triple::new(
            Term::iri(format!("http://bench/gate-student-{round}-{i}")),
            Term::iri(&*takes),
            Term::iri(format!("http://bench/gate-course-{}", i % 8)),
        ));
    }
    batch
}

/// Per-batch apply latency of one path: a fresh service over `store`,
/// tries warmed on the hot predicate, then `runs` batches timed (best
/// and worst dropped). With `compact_each`, every batch is immediately
/// folded into fresh base tables — the pre-overlay cost model, where an
/// apply re-freezes the whole predicate no matter how small the batch.
/// Returns the mean latency and the service (still holding whatever the
/// path left staged).
fn timed_apply_path(
    store: SharedStore,
    planner: PlannerConfig,
    runs: usize,
    compact_each: bool,
) -> (Duration, QueryService) {
    let svc = QueryService::new(
        store,
        ServiceConfig {
            planner,
            result_cache_bytes: ServiceConfig::DEFAULT_RESULT_CACHE_BYTES,
            plan_cache_entries: ServiceConfig::DEFAULT_PLAN_CACHE_ENTRIES,
            server_sessions: ServiceConfig::DEFAULT_SERVER_SESSIONS,
            record_metrics: true,
            slow_query_ms: None,
        },
    );
    // Warm the hot predicate's tries: the rebuild path's per-batch cost
    // is exactly re-freezing this serving state, which the staged path
    // defers to one compaction.
    let takes = pred_iri(Predicate::TakesCourse);
    let warm = respond(&svc, &format!("QUERY SELECT ?x ?y WHERE {{ ?x <{takes}> ?y }}"));
    assert!(warm.starts_with("OK "), "{warm}");
    let mut round = 0u64;
    let per_batch = measure(runs, || {
        let summary = svc.update(gate_batch(round));
        assert_eq!(summary.inserted, GATE_BATCH_TRIPLES, "gate batches must be fresh triples");
        if compact_each {
            let folded = svc.compact();
            assert!(folded.compacted_predicates >= 1, "forced fold must compact");
        }
        round += 1;
    });
    (per_batch, svc)
}

fn main() {
    let args = parse_args();
    let runtime = RuntimeConfig::from_env();
    let cfg = GeneratorConfig::scale(args.universities).with_seed(args.seed);
    eprintln!("generating LUBM({}) ...", args.universities);
    let store = SharedStore::new(generate_store(&cfg));
    let triples = store.read().stats().triples;
    let mix: Vec<String> = QUERY_NUMBERS
        .iter()
        .map(|&n| format!("QUERY {}", lubm_sparql(n).expect("workload query")))
        .collect();
    println!(
        "Update workload — LUBM({}) = {} triples, {} engine threads, {READERS} readers, \
         {BATCH_TRIPLES}-triple batches every {WRITE_EVERY_MS} ms",
        args.universities, triples, runtime.num_threads
    );

    let svc = QueryService::new(
        store.clone(),
        ServiceConfig {
            planner: PlannerConfig::with_flags(OptFlags::all()).with_runtime(runtime),
            result_cache_bytes: ServiceConfig::DEFAULT_RESULT_CACHE_BYTES,
            plan_cache_entries: ServiceConfig::DEFAULT_PLAN_CACHE_ENTRIES,
            server_sessions: ServiceConfig::DEFAULT_SERVER_SESSIONS,
            record_metrics: true,
            slow_query_ms: None,
        },
    );
    // Warm every shape once so phase 1 measures the steady state.
    for request in &mix {
        let r = respond(&svc, request);
        assert!(r.starts_with("OK "), "{r}");
    }

    let phase = Duration::from_millis(PHASE_MS);
    let round = AtomicU64::new(0);
    let mut table = TablePrinter::new(&["Phase", "Requests", "QPS", "Batches", "Apply ms/batch"]);
    let (read_only_answered, _, _) = timed_phase(&svc, &mix, phase, None);
    let read_only_qps = read_only_answered as f64 / phase.as_secs_f64();
    table.row(&[
        "read-only".into(),
        read_only_answered.to_string(),
        format!("{read_only_qps:.0}"),
        "0".into(),
        "-".into(),
    ]);
    let (answered, batches, apply_time) =
        timed_phase(&svc, &mix, phase, Some((&round, Duration::from_millis(WRITE_EVERY_MS))));
    let under_writes_qps = answered as f64 / phase.as_secs_f64();
    table.row(&[
        "under-writes".into(),
        answered.to_string(),
        format!("{under_writes_qps:.0}"),
        batches.to_string(),
        if batches > 0 {
            format!("{:.2}", apply_time.as_secs_f64() * 1e3 / batches as f64)
        } else {
            "-".into()
        },
    ]);
    println!("\n{}", table.render());

    // Phase 3 — the tentpole's cost model, measured: a small batch on
    // the hottest predicate through the staged (overlay) path vs. the
    // rebuild path (every batch immediately folded, so each apply
    // re-freezes the whole predicate — the pre-overlay behaviour). Both
    // start from identical store contents.
    let contents = store.read().clone();
    let flags = PlannerConfig::with_flags(OptFlags::all()).with_runtime(runtime);
    let (staged_per_batch, staged_svc) =
        timed_apply_path(SharedStore::new(contents.clone()), flags, args.runs, false);
    let (rebuild_per_batch, _) =
        timed_apply_path(SharedStore::new(contents), flags, args.runs, true);
    // The staged path's defining property, asserted not just timed: a
    // small batch re-freezes nothing.
    let probe = staged_svc.update(gate_batch(u64::MAX));
    assert_eq!(
        (probe.rebuilt_tries, probe.compacted_predicates),
        (0, 0),
        "a {GATE_BATCH_TRIPLES}-triple batch must stage, not re-freeze the predicate"
    );
    // The staged service now holds every gate batch as overlay deltas;
    // folding them all is the pause the overlay defers off the hot path.
    let staged_pairs = staged_svc.stats().staged_pairs;
    assert!(staged_pairs > 0, "gate batches must have stayed staged");
    let t0 = Instant::now();
    let folded = staged_svc.compact();
    let compaction_pause = t0.elapsed();
    assert!(folded.compacted_predicates >= 1, "compact must fold the staged predicate");
    let speedup = rebuild_per_batch.as_secs_f64() / staged_per_batch.as_secs_f64();
    println!(
        "apply path ({GATE_BATCH_TRIPLES}-triple batches on takesCourse): \
         staged {:.3} ms/batch vs rebuild {:.3} ms/batch = {speedup:.1}x; \
         compaction pause {:.3} ms for {staged_pairs} staged pairs",
        staged_per_batch.as_secs_f64() * 1e3,
        rebuild_per_batch.as_secs_f64() * 1e3,
        compaction_pause.as_secs_f64() * 1e3,
    );

    let mut report = BenchReport::new("updates");
    report
        .meta("universities", args.universities)
        .meta("threads", runtime.num_threads)
        .meta("gate_batch_triples", GATE_BATCH_TRIPLES)
        .metric("read_only_qps", read_only_qps)
        .metric("under_writes_qps", under_writes_qps)
        .metric("writer_batches", batches as f64)
        .metric_ms("staged_apply_ms_per_batch", staged_per_batch)
        .metric_ms("rebuild_apply_ms_per_batch", rebuild_per_batch)
        .metric("staged_speedup", speedup)
        .metric_ms("compaction_pause_ms", compaction_pause)
        .metric("staged_pairs_folded", staged_pairs as f64);
    if batches > 0 {
        report.metric("apply_ms_per_batch", apply_time.as_secs_f64() * 1e3 / batches as f64);
    }
    match report.write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write bench report: {e}"),
    }

    // Correctness epilogue: the served answers over the final contents
    // must be byte-identical to a cold engine over a snapshot of them.
    let snapshot = store.read().clone();
    let cold = QueryService::new(
        snapshot,
        ServiceConfig {
            planner: PlannerConfig::with_flags(OptFlags::all()),
            result_cache_bytes: 0,
            plan_cache_entries: 1,
            server_sessions: 1,
            record_metrics: true,
            slow_query_ms: None,
        },
    );
    for request in &mix {
        assert_eq!(respond(&svc, request), respond(&cold, request), "diverged on {request}");
    }
    let stats = svc.stats();
    println!(
        "final store: {} triples; updates={} inserted={} epoch={}; all answers match a cold engine",
        store.read().stats().triples,
        stats.updates_applied,
        stats.triples_inserted,
        stats.epoch
    );

    if let Some(min) = args.min_speedup {
        if speedup < min {
            eprintln!(
                "FAIL: staged apply is only {speedup:.1}x faster than the rebuild path \
                 (required {min:.1}x)"
            );
            std::process::exit(1);
        }
        println!("gate: staged apply {speedup:.1}x >= {min:.1}x over rebuild — OK");
    }
}
