//! Update-workload harness: steady-state query throughput of the serving
//! tier **while a writer applies batched inserts**, plus the cost of the
//! update path itself (per-batch apply latency, tries rebuilt).
//!
//! Three phases, each over the same LUBM store and query mix:
//!
//! 1. `read-only` — reader threads only, warm caches: the baseline QPS.
//! 2. `under-writes` — the same readers racing one writer that applies
//!    a batch of fresh triples every `--write-every-ms` milliseconds;
//!    every batch invalidates the touched predicate's tries and every
//!    derived cache, so this measures the real cost of churn.
//! 3. a correctness epilogue: the final answers must be byte-identical
//!    to a cold engine over the final store contents.
//!
//! ```text
//! cargo run --release -p eh-bench --bin updates -- --universities 1
//! EH_THREADS=4 cargo run --release -p eh-bench --bin updates
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use eh_bench::{HarnessArgs, TablePrinter};
use eh_lubm::queries::{lubm_sparql, QUERY_NUMBERS};
use eh_lubm::{generate_store, pred_iri, GeneratorConfig, Predicate};
use eh_par::RuntimeConfig;
use eh_rdf::{Term, Triple};
use eh_srv::{respond, QueryService, ServiceConfig, SharedStore, UpdateBatch};
use emptyheaded::{OptFlags, PlannerConfig};

const READERS: usize = 4;
const PHASE_MS: u64 = 1500;
const WRITE_EVERY_MS: u64 = 50;
const BATCH_TRIPLES: usize = 64;

/// A batch of fresh student→course triples (new subjects every call, so
/// every batch is real change on one hot predicate).
fn write_batch(round: u64) -> UpdateBatch {
    let takes = pred_iri(Predicate::TakesCourse);
    let mut batch = UpdateBatch::new();
    for i in 0..BATCH_TRIPLES {
        batch.insert(Triple::new(
            Term::iri(format!("http://bench/update-student-{round}-{i}")),
            Term::iri(&*takes),
            Term::iri(format!("http://bench/update-course-{}", i % 8)),
        ));
    }
    batch
}

/// Run the reader loop until `stop`, counting answered requests.
fn read_loop(svc: &QueryService, mix: &[String], offset: usize, stop: &AtomicBool) -> u64 {
    let mut answered = 0u64;
    let mut i = offset;
    while !stop.load(Ordering::Acquire) {
        let request = &mix[i % mix.len()];
        let response = respond(svc, request);
        assert!(response.starts_with("OK "), "reader got an error: {response}");
        std::hint::black_box(&response);
        answered += 1;
        i += 1;
    }
    answered
}

fn timed_phase(
    svc: &QueryService,
    mix: &[String],
    duration: Duration,
    writer: Option<(&AtomicU64, Duration)>,
) -> (u64, u64, Duration) {
    let stop = AtomicBool::new(false);
    let answered = AtomicU64::new(0);
    let batches = AtomicU64::new(0);
    let mut apply_time = Duration::ZERO;
    std::thread::scope(|scope| {
        for r in 0..READERS {
            let (svc, mix, stop, answered) = (svc, mix, &stop, &answered);
            scope.spawn(move || {
                answered.fetch_add(read_loop(svc, mix, r, stop), Ordering::Relaxed);
            });
        }
        if let Some((round_counter, every)) = writer {
            let (stop, batches, apply_time) = (&stop, &batches, &mut apply_time);
            scope.spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    let round = round_counter.fetch_add(1, Ordering::Relaxed);
                    let t0 = Instant::now();
                    let summary = svc.update(write_batch(round));
                    *apply_time += t0.elapsed();
                    assert_eq!(summary.inserted, BATCH_TRIPLES, "batch must be fresh triples");
                    batches.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(every);
                }
            });
        }
        std::thread::sleep(duration);
        stop.store(true, Ordering::Release);
    });
    (answered.load(Ordering::Relaxed), batches.load(Ordering::Relaxed), apply_time)
}

fn main() {
    let args = HarnessArgs::from_env();
    let runtime = RuntimeConfig::from_env();
    let cfg = GeneratorConfig::scale(args.universities).with_seed(args.seed);
    eprintln!("generating LUBM({}) ...", args.universities);
    let store = SharedStore::new(generate_store(&cfg));
    let triples = store.read().stats().triples;
    let mix: Vec<String> = QUERY_NUMBERS
        .iter()
        .map(|&n| format!("QUERY {}", lubm_sparql(n).expect("workload query")))
        .collect();
    println!(
        "Update workload — LUBM({}) = {} triples, {} engine threads, {READERS} readers, \
         {BATCH_TRIPLES}-triple batches every {WRITE_EVERY_MS} ms",
        args.universities, triples, runtime.num_threads
    );

    let svc = QueryService::new(
        store.clone(),
        ServiceConfig {
            planner: PlannerConfig::with_flags(OptFlags::all()).with_runtime(runtime),
            result_cache_bytes: ServiceConfig::DEFAULT_RESULT_CACHE_BYTES,
            plan_cache_entries: ServiceConfig::DEFAULT_PLAN_CACHE_ENTRIES,
            server_sessions: ServiceConfig::DEFAULT_SERVER_SESSIONS,
            record_metrics: true,
            slow_query_ms: None,
        },
    );
    // Warm every shape once so phase 1 measures the steady state.
    for request in &mix {
        let r = respond(&svc, request);
        assert!(r.starts_with("OK "), "{r}");
    }

    let phase = Duration::from_millis(PHASE_MS);
    let round = AtomicU64::new(0);
    let mut table = TablePrinter::new(&["Phase", "Requests", "QPS", "Batches", "Apply ms/batch"]);
    let (answered, _, _) = timed_phase(&svc, &mix, phase, None);
    table.row(&[
        "read-only".into(),
        answered.to_string(),
        format!("{:.0}", answered as f64 / phase.as_secs_f64()),
        "0".into(),
        "-".into(),
    ]);
    let (answered, batches, apply_time) =
        timed_phase(&svc, &mix, phase, Some((&round, Duration::from_millis(WRITE_EVERY_MS))));
    table.row(&[
        "under-writes".into(),
        answered.to_string(),
        format!("{:.0}", answered as f64 / phase.as_secs_f64()),
        batches.to_string(),
        if batches > 0 {
            format!("{:.2}", apply_time.as_secs_f64() * 1e3 / batches as f64)
        } else {
            "-".into()
        },
    ]);
    println!("\n{}", table.render());

    // Correctness epilogue: the served answers over the final contents
    // must be byte-identical to a cold engine over a snapshot of them.
    let snapshot = store.read().clone();
    let cold = QueryService::new(
        snapshot,
        ServiceConfig {
            planner: PlannerConfig::with_flags(OptFlags::all()),
            result_cache_bytes: 0,
            plan_cache_entries: 1,
            server_sessions: 1,
            record_metrics: true,
            slow_query_ms: None,
        },
    );
    for request in &mix {
        assert_eq!(respond(&svc, request), respond(&cold, request), "diverged on {request}");
    }
    let stats = svc.stats();
    println!(
        "final store: {} triples; updates={} inserted={} epoch={}; all answers match a cold engine",
        store.read().stats().triples,
        stats.updates_applied,
        stats.triples_inserted,
        stats.epoch
    );
}
