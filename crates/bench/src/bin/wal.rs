//! Write-ahead-log harness: what durability costs on the apply path.
//!
//! Four configurations over identical LUBM contents and an identical
//! stream of fresh-triple batches:
//!
//! 1. `no-wal` — the baseline: batches stage as overlay deltas, nothing
//!    is logged.
//! 2. `fsync=never` — every batch is framed and written to the log but
//!    never explicitly synced; this is the pure logging overhead
//!    (encode + checksum + write) and the number the `--max-overhead`
//!    gate defends (default 10% over the baseline).
//! 3. `fsync=interval:5` — group durability: at most 5 ms of
//!    acknowledged batches are exposed to a power loss.
//! 4. `fsync=always` — every batch is durable before it is
//!    acknowledged; the price is one fdatasync per apply.
//!
//! A recovery epilogue replays the full log into a fresh engine and
//! checks the recovered store holds every logged triple — timing how
//! fast a restart catches up.
//!
//! Emits `BENCH_wal.json` (into `$EH_BENCH_OUT` if set).
//!
//! ```text
//! cargo run --release -p eh-bench --bin wal -- --universities 1
//! cargo run --release -p eh-bench --bin wal -- --max-overhead 10
//! ```

use std::time::{Duration, Instant};

use eh_bench::{BenchReport, TablePrinter};
use eh_lubm::{generate_store, pred_iri, GeneratorConfig, Predicate};
use eh_rdf::{Term, Triple};
use eh_srv::SharedStore;
use emptyheaded::{Engine, FsyncPolicy, OptFlags, PlannerConfig, UpdateBatch};

const BATCH_TRIPLES: usize = 64;

#[derive(Debug, Clone, Copy)]
struct Args {
    universities: u32,
    runs: usize,
    seed: u64,
    /// Maximum fsync=never apply overhead over the no-WAL baseline, in
    /// percent; above it, exit 1.
    max_overhead: Option<f64>,
}

fn parse_args() -> Args {
    let mut args = Args { universities: 1, runs: 48, seed: 42, max_overhead: None };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| {
            argv.get(i + 1)
                .unwrap_or_else(|| panic!("missing value after {}", argv[i]))
                .parse::<f64>()
                .unwrap_or_else(|e| panic!("bad value after {}: {e}", argv[i]))
        };
        match argv[i].as_str() {
            "--universities" | "-u" => args.universities = value(i) as u32,
            "--runs" | "-r" => args.runs = value(i) as usize,
            "--seed" | "-s" => args.seed = value(i) as u64,
            "--max-overhead" => args.max_overhead = Some(value(i)),
            other => {
                eprintln!(
                    "unknown argument {other}; expected --universities N, --runs K, --seed S, \
                     --max-overhead PCT"
                );
                std::process::exit(2);
            }
        }
        i += 2;
    }
    assert!(args.runs >= 3, "need at least 3 runs to drop best and worst");
    args
}

/// A fresh-triple batch on the hot predicate; `tag` keeps each
/// configuration's subjects disjoint so every batch is real change.
fn batch(tag: &str, round: u64) -> UpdateBatch {
    let takes = pred_iri(Predicate::TakesCourse);
    let mut b = UpdateBatch::new();
    for i in 0..BATCH_TRIPLES {
        b.insert(Triple::new(
            Term::iri(format!("http://bench/wal-{tag}-student-{round}-{i}")),
            Term::iri(&*takes),
            Term::iri(format!("http://bench/wal-course-{}", i % 8)),
        ));
    }
    b
}

/// Rounds of paired measurement. In every round each mode gets its own
/// fresh engine (and, with a policy, a fresh log), and single `update`
/// calls then alternate between the modes' engines — batch k applies to
/// every mode back-to-back before batch k+1. Pairing at the ~40 µs
/// batch scale instead of the ~2 ms block scale matters: frequency
/// transitions, scheduler ticks, and writeback stalls last longer than
/// a batch, so alternation spreads them across all modes evenly, where
/// block-per-mode timing let one mode eat a whole stall and called the
/// bias "overhead" (observed swinging a block ratio by ±15% both ways).
///
/// The reported latency is the per-mode median across rounds; the
/// overheads reduce the *per-round* ratios against the same round's
/// baseline. The reducer is the 25th percentile: residual stall noise
/// is right-skewed (a stall only ever inflates a round), so a low
/// quantile tracks the intrinsic logging cost — the thing a code
/// regression would actually move — while a mean would gate on noise.
///
/// The gated comparison (no-wal vs fsync=never) runs as its own phase
/// *before* the fsync-heavy modes, whose queued journal commits bleed
/// writeback stalls into neighbouring work.
const REPS: usize = 16;

/// Compaction is lifted out of reach of every engine: this harness
/// times the logged staging path itself, not an occasional fold (the
/// fold's cost has its own harness in `updates`).
fn bench_engine(contents: &eh_rdf::TripleStore, policy: Option<FsyncPolicy>) -> Engine {
    let config = PlannerConfig::with_flags(OptFlags::all())
        .with_wal_fsync(policy.unwrap_or_default())
        .with_compaction(u32::MAX, 100);
    Engine::with_config(SharedStore::new(contents.clone()), config)
}

/// One mode's measurement: median per-batch latency, paired overhead
/// over the baseline, final log size and path.
struct ModeResult {
    per_batch: Duration,
    overhead_pct: f64,
    wal_bytes: u64,
    path: Option<std::path::PathBuf>,
}

fn quantile(mut xs: Vec<f64>, q: f64) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN latencies"));
    xs[((xs.len() - 1) as f64 * q).round() as usize]
}

fn median(xs: Vec<f64>) -> f64 {
    quantile(xs, 0.5)
}

/// Run `REPS` batch-interleaved rounds of every mode and reduce to
/// paired statistics. The first mode must be the no-WAL baseline.
fn timed_apply_matrix(
    contents: &eh_rdf::TripleStore,
    policies: &[(&str, Option<FsyncPolicy>)],
    runs: usize,
) -> Vec<ModeResult> {
    let paths: Vec<Option<std::path::PathBuf>> = policies
        .iter()
        .map(|(tag, policy)| {
            policy.map(|_| {
                std::env::temp_dir().join(format!("eh-bench-wal-{tag}-{}.wal", std::process::id()))
            })
        })
        .collect();
    let mut totals: Vec<Vec<f64>> = vec![Vec::with_capacity(REPS); policies.len()];
    let mut wal_bytes = vec![0u64; policies.len()];
    let mut round = 0u64;
    for _ in 0..REPS {
        let engines: Vec<Engine> = policies
            .iter()
            .enumerate()
            .map(|(i, (_, policy))| {
                let mut engine = bench_engine(contents, *policy);
                if let Some(path) = &paths[i] {
                    std::fs::remove_file(path).ok();
                    engine.open_wal(path).expect("fresh wal opens");
                }
                engine
            })
            .collect();
        // Per-mode batches, prebuilt outside every timer; `tag` keeps
        // each mode's subjects disjoint so every batch is real change.
        let mut batches: Vec<Vec<UpdateBatch>> = policies
            .iter()
            .map(|(tag, _)| {
                let b = (0..runs).map(|k| batch(tag, round + k as u64)).collect();
                round += runs as u64;
                b
            })
            .collect();
        let mut sums = vec![0.0f64; policies.len()];
        for _ in 0..runs {
            for (i, engine) in engines.iter().enumerate() {
                let b = batches[i].pop().expect("runs batches per mode");
                let t0 = Instant::now();
                let summary = engine.update(b);
                sums[i] += t0.elapsed().as_secs_f64();
                assert_eq!(summary.inserted, BATCH_TRIPLES, "batches must be fresh triples");
            }
        }
        for (i, engine) in engines.iter().enumerate() {
            totals[i].push(sums[i]);
            wal_bytes[i] = engine.wal_status().map_or(0, |w| w.bytes);
        }
    }
    policies
        .iter()
        .enumerate()
        .map(|(i, _)| {
            let ratios: Vec<f64> =
                totals[i].iter().zip(&totals[0]).map(|(m, b)| (m / b - 1.0) * 100.0).collect();
            ModeResult {
                per_batch: Duration::from_secs_f64(median(totals[i].clone()) / runs as f64),
                overhead_pct: quantile(ratios, 0.25),
                wal_bytes: wal_bytes[i],
                path: paths[i].clone(),
            }
        })
        .collect()
}

fn main() {
    let args = parse_args();
    let cfg = GeneratorConfig::scale(args.universities).with_seed(args.seed);
    eprintln!("generating LUBM({}) ...", args.universities);
    let store = SharedStore::new(generate_store(&cfg));
    let contents = store.read().clone();
    let triples = contents.stats().triples;
    println!(
        "WAL apply cost — LUBM({}) = {triples} triples, {BATCH_TRIPLES}-triple batches, \
         {} timed runs per mode",
        args.universities, args.runs
    );

    // Phase 1 — the gated pair, measured before any fdatasync runs.
    let gate_modes: &[(&str, Option<FsyncPolicy>)] =
        &[("baseline", None), ("never", Some(FsyncPolicy::Never))];
    let mut gate = timed_apply_matrix(&contents, gate_modes, args.runs);
    let never = gate.pop().unwrap();
    let baseline = gate.pop().unwrap();

    // Phase 2 — the durability modes, paired against their own
    // interleaved baseline so the ratios stay honest under the heavier
    // I/O this phase generates.
    let dur_modes: &[(&str, Option<FsyncPolicy>)] = &[
        ("base2", None),
        ("interval", Some(FsyncPolicy::Interval(5))),
        ("always", Some(FsyncPolicy::Always)),
    ];
    let mut dur = timed_apply_matrix(&contents, dur_modes, args.runs);
    let always = dur.pop().unwrap();
    let interval = dur.pop().unwrap();

    let ms = |d: Duration| format!("{:.3}", d.as_secs_f64() * 1e3);
    let mut table = TablePrinter::new(&["Mode", "Apply ms/batch", "Overhead", "Log bytes"]);
    table.row(&["no-wal".into(), ms(baseline.per_batch), "-".into(), "0".into()]);
    table.row(&[
        "fsync=never".into(),
        ms(never.per_batch),
        format!("{:+.1}%", never.overhead_pct),
        never.wal_bytes.to_string(),
    ]);
    table.row(&[
        "fsync=interval:5".into(),
        ms(interval.per_batch),
        format!("{:+.1}%", interval.overhead_pct),
        "-".into(),
    ]);
    table.row(&[
        "fsync=always".into(),
        ms(always.per_batch),
        format!("{:+.1}%", always.overhead_pct),
        always.wal_bytes.to_string(),
    ]);
    println!("\n{}", table.render());

    // Recovery epilogue: a fresh engine over the same base contents
    // replays the fsync=always log and must hold every logged triple.
    let always_path = always.path.expect("always mode kept its log");
    let mut recovered = Engine::with_config(
        SharedStore::new(contents.clone()),
        PlannerConfig::with_flags(OptFlags::all()),
    );
    let t0 = Instant::now();
    let recovery = recovered.open_wal(&always_path).expect("log replays");
    let recovery_time = t0.elapsed();
    let logged = args.runs as u64 * BATCH_TRIPLES as u64;
    assert_eq!(
        recovery.inserted as u64, logged,
        "recovery must replay every logged triple exactly once"
    );
    assert_eq!(recovered.store().stats().triples, triples + logged as usize);
    println!(
        "recovery: {} records ({} triples) replayed in {:.1} ms",
        recovery.replayed,
        recovery.inserted,
        recovery_time.as_secs_f64() * 1e3
    );
    for path in [Some(always_path), never.path.clone(), interval.path].into_iter().flatten() {
        std::fs::remove_file(path).ok();
    }

    let mut report = BenchReport::new("wal");
    report
        .meta("universities", args.universities)
        .meta("batch_triples", BATCH_TRIPLES)
        .meta("runs", args.runs)
        .metric_ms("baseline_apply_ms_per_batch", baseline.per_batch)
        .metric_ms("fsync_never_apply_ms_per_batch", never.per_batch)
        .metric_ms("fsync_interval5_apply_ms_per_batch", interval.per_batch)
        .metric_ms("fsync_always_apply_ms_per_batch", always.per_batch)
        .metric("fsync_never_overhead_pct", never.overhead_pct)
        .metric("fsync_always_overhead_pct", always.overhead_pct)
        .metric("wal_bytes_per_batch", never.wal_bytes as f64 / args.runs as f64)
        .metric_ms("recovery_ms", recovery_time)
        .metric("recovery_records", recovery.replayed as f64);
    match report.write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write bench report: {e}"),
    }

    if let Some(max) = args.max_overhead {
        let overhead = never.overhead_pct;
        if overhead > max {
            eprintln!(
                "FAIL: fsync=never logging adds {overhead:.1}% to apply latency \
                 (allowed {max:.1}%)"
            );
            std::process::exit(1);
        }
        println!("gate: fsync=never overhead {overhead:+.1}% <= {max:.1}% — OK");
    }
}
