//! Serving-tier load generator: a Zipfian LUBM query mix fired at a real
//! TCP [`eh_srv::serve`] instance from concurrent client sessions, with
//! an optional writer session applying live updates, scraped through the
//! `METRICS` verb at the end of the run.
//!
//! Three things come out of a run:
//!
//! 1. `BENCH_serving.json` — client-observed p50/p99 latency and
//!    throughput, plus the server-side percentiles from `STATS`.
//! 2. Hard assertions that the observability surface is live: the
//!    exposition parses, query/cache/update series are non-zero, and
//!    every response stayed byte-identical to its cold reference.
//! 3. An instrumentation-overhead gate: warm cached request loops with
//!    `record_metrics` on vs off must stay within `--max-overhead`
//!    percent of each other (default 5).
//!
//! ```text
//! cargo run --release -p eh-bench --bin serving -- --quick
//! cargo run --release -p eh-bench --bin serving -- --universities 1 --sessions 8 --writer
//! ```

use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use eh_bench::{BenchReport, TablePrinter};
use eh_lubm::queries::{lubm_sparql, QUERY_NUMBERS};
use eh_lubm::{generate_store, GeneratorConfig};
use eh_obs::{parse_exposition, Histogram, Sample};
use eh_par::RuntimeConfig;
use eh_rdf::TripleStore;
use eh_srv::{respond, serve, Client, QueryService, ServiceConfig};
use emptyheaded::{OptFlags, PlannerConfig};

struct Args {
    universities: u32,
    seed: u64,
    sessions: usize,
    /// Requests issued per client session.
    requests: usize,
    writer: bool,
    quick: bool,
    max_overhead_pct: f64,
}

fn usage() -> ! {
    eprintln!(
        "usage: serving [--universities N] [--seed S] [--sessions N] [--requests N] \
         [--writer] [--quick] [--max-overhead PCT]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        universities: 1,
        seed: 42,
        sessions: 4,
        requests: 400,
        writer: false,
        quick: false,
        max_overhead_pct: 5.0,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value =
            |i: usize| -> &str { argv.get(i + 1).map(|s| s.as_str()).unwrap_or_else(|| usage()) };
        match argv[i].as_str() {
            "--universities" => args.universities = value(i).parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = value(i).parse().unwrap_or_else(|_| usage()),
            "--sessions" => args.sessions = value(i).parse().unwrap_or_else(|_| usage()),
            "--requests" => args.requests = value(i).parse().unwrap_or_else(|_| usage()),
            "--max-overhead" => {
                args.max_overhead_pct = value(i).parse().unwrap_or_else(|_| usage())
            }
            "--writer" => {
                args.writer = true;
                i += 1;
                continue;
            }
            "--quick" => {
                args.quick = true;
                i += 1;
                continue;
            }
            _ => usage(),
        }
        i += 2;
    }
    if args.quick {
        args.sessions = args.sessions.min(2);
        args.requests = args.requests.min(120);
        args.writer = true; // the CI run must exercise the update series too
    }
    if args.sessions == 0 || args.requests == 0 {
        usage();
    }
    args
}

/// Deterministic 64-bit LCG (same multiplier/increment as the synthetic
/// set generator in `eh_bench::synth_set`), mapped to a uniform f64 in
/// [0, 1).
fn lcg_uniform(state: &mut u64) -> f64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    (*state >> 11) as f64 / (1u64 << 53) as f64
}

/// Zipfian CDF over ranks 1..=n with weight 1/rank: the first queries of
/// the mix dominate, the tail still appears — a cache-friendly skew with
/// guaranteed coverage of every query over a few hundred draws.
fn zipf_cdf(n: usize) -> Vec<f64> {
    let weights: Vec<f64> = (1..=n).map(|rank| 1.0 / rank as f64).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    weights
        .iter()
        .map(|w| {
            acc += w / total;
            acc
        })
        .collect()
}

fn draw(cdf: &[f64], state: &mut u64) -> usize {
    let u = lcg_uniform(state);
    cdf.iter().position(|&c| u < c).unwrap_or(cdf.len() - 1)
}

fn sample_value(samples: &[Sample], name: &str) -> Option<f64> {
    samples.iter().find(|s| s.name == name).map(|s| s.value)
}

/// Strip the `OK <VERB>\n ... END\n` framing from a multi-line response.
fn frame_body(response: &str, verb: &str) -> String {
    let header = format!("OK {verb}\n");
    assert!(response.starts_with(&header), "unexpected {verb} response: {response}");
    let body = &response[header.len()..];
    let body = body.strip_suffix("END\n").expect("framed response ends with END");
    body.to_string()
}

fn field_u64(line: &str, key: &str) -> u64 {
    line.split_whitespace()
        .find_map(|kv| kv.strip_prefix(&format!("{key}=")))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no {key}= field in: {line}"))
}

/// Warm cached QPS through `respond` with metrics recording on or off:
/// the request path is parse + plan-cache hit + result-cache hit + string
/// clone, so any instrumentation cost shows up undiluted.
fn warm_cached_qps(store: &TripleStore, mix: &[String], rounds: usize, record: bool) -> f64 {
    let service = QueryService::new(
        store.clone(),
        ServiceConfig {
            planner: PlannerConfig::with_flags(OptFlags::all()),
            result_cache_bytes: ServiceConfig::DEFAULT_RESULT_CACHE_BYTES,
            plan_cache_entries: ServiceConfig::DEFAULT_PLAN_CACHE_ENTRIES,
            server_sessions: ServiceConfig::DEFAULT_SERVER_SESSIONS,
            record_metrics: record,
            slow_query_ms: None,
        },
    );
    let requests: Vec<String> = mix.iter().map(|q| format!("QUERY {q}")).collect();
    for r in &requests {
        std::hint::black_box(respond(&service, r)); // populate both caches
    }
    let t0 = Instant::now();
    for _ in 0..rounds {
        for r in &requests {
            std::hint::black_box(respond(&service, r));
        }
    }
    (rounds * requests.len()) as f64 / t0.elapsed().as_secs_f64()
}

fn main() {
    let args = parse_args();
    let runtime = RuntimeConfig::from_env();
    let cfg = if args.quick {
        GeneratorConfig::tiny(args.universities).with_seed(args.seed)
    } else {
        GeneratorConfig::scale(args.universities).with_seed(args.seed)
    };
    eprintln!(
        "generating LUBM({}){} ...",
        args.universities,
        if args.quick { " (tiny)" } else { "" }
    );
    let store = generate_store(&cfg);
    let mix: Vec<String> =
        QUERY_NUMBERS.iter().map(|&n| lubm_sparql(n).expect("workload query")).collect();
    println!(
        "Serving load — LUBM({}) = {} triples, {} sessions x {} requests, writer={}, {} engine threads",
        args.universities,
        store.stats().triples,
        args.sessions,
        args.requests,
        args.writer,
        runtime.num_threads
    );

    let service = QueryService::new(
        store.clone(),
        ServiceConfig {
            planner: PlannerConfig::with_flags(OptFlags::all()).with_runtime(runtime),
            result_cache_bytes: ServiceConfig::DEFAULT_RESULT_CACHE_BYTES,
            plan_cache_entries: ServiceConfig::DEFAULT_PLAN_CACHE_ENTRIES,
            server_sessions: args.sessions + 2, // clients + writer + scraper
            record_metrics: true,
            slow_query_ms: None,
        },
    );

    // Cold reference answers, computed in-process before any traffic: the
    // writer only ever touches its own bench-local predicate, so every
    // served answer — cached or re-executed after an epoch bump — must
    // stay byte-identical to these.
    let reference: Vec<String> =
        mix.iter().map(|q| respond(&service, &format!("QUERY {q}"))).collect();

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback listener");
    let addr = listener.local_addr().expect("bound socket has an address");
    let shutdown = AtomicBool::new(false);
    let clients_done = AtomicBool::new(false);
    let latency = Histogram::new(); // microseconds, client-observed
    let cdf = zipf_cdf(mix.len());

    let mut total = 0usize;
    let mut writer_applies = 0u64;
    let wall = std::thread::scope(|scope| {
        let (service, shutdown) = (&service, &shutdown);
        scope.spawn(move || serve(service, listener, shutdown));

        if args.writer {
            let (clients_done, writer_applies) = (&clients_done, &mut writer_applies);
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("writer connects");
                let mut i = 0u64;
                while !clients_done.load(Ordering::Acquire) {
                    // Insert-then-delete on a bench-local predicate: the
                    // epoch advances and caches invalidate, but no LUBM
                    // answer changes.
                    let triple = format!(
                        "<http://bench.local/s{i}> <http://bench.local/touched> \
                         <http://bench.local/o{i}> ."
                    );
                    let verb = if i.is_multiple_of(2) { "INSERT" } else { "DELETE" };
                    let ok = client.send(&format!("{verb} {triple}")).expect("stage op");
                    assert!(ok.starts_with("OK"), "stage failed: {ok}");
                    let applied = client.send("APPLY").expect("apply");
                    assert!(applied.starts_with("OK applied"), "apply failed: {applied}");
                    *writer_applies += 1;
                    i += 1;
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                let _ = client.send("QUIT");
            });
        }

        let t0 = Instant::now();
        std::thread::scope(|clients| {
            for s in 0..args.sessions {
                let (mix, reference, cdf, latency) = (&mix, &reference, &cdf, &latency);
                clients.spawn(move || {
                    let mut client = Client::connect(addr).expect("client connects");
                    let mut rng = args.seed ^ (0x9e3779b97f4a7c15u64.wrapping_mul(s as u64 + 1));
                    for _ in 0..args.requests {
                        let idx = draw(cdf, &mut rng);
                        let q0 = Instant::now();
                        let got =
                            client.send(&format!("QUERY {}", mix[idx])).expect("query round trip");
                        latency.record(q0.elapsed().as_micros() as u64);
                        assert_eq!(
                            got, reference[idx],
                            "served answer diverged from cold reference (query index {idx})"
                        );
                    }
                    let _ = client.send("QUIT");
                });
            }
        });
        let wall = t0.elapsed();
        total = args.sessions * args.requests;
        clients_done.store(true, Ordering::Release);

        // Scrape the observability surface over the wire before shutdown.
        let mut scraper = Client::connect(addr).expect("scraper connects");
        let stats_line = scraper.send("STATS").expect("stats");
        let metrics_body = frame_body(&scraper.send("METRICS").expect("metrics"), "METRICS");
        let _ = scraper.send("QUIT");
        shutdown.store(true, Ordering::Release);
        (wall, stats_line, metrics_body)
    });
    let (wall, stats_line, metrics_body) = wall;

    // The exposition must parse and the series the dashboards would sit
    // on must be live — this is the CI assertion surface.
    let samples = parse_exposition(&metrics_body).expect("exposition parses");
    let queries = sample_value(&samples, "eh_query_latency_us_count").unwrap_or(0.0);
    let result_hits = sample_value(&samples, "eh_result_cache_hits_total").unwrap_or(0.0);
    let result_misses = sample_value(&samples, "eh_result_cache_misses_total").unwrap_or(0.0);
    let query_requests = samples
        .iter()
        .find(|s| s.name == "eh_requests_total" && s.label("verb") == Some("query"))
        .map(|s| s.value)
        .unwrap_or(0.0);
    assert!(
        queries >= total as f64,
        "METRICS reports {queries} recorded queries, expected at least {total}"
    );
    assert!(query_requests >= total as f64, "per-verb request counter undercounts");
    assert!(result_hits > 0.0, "warm Zipfian mix must hit the result cache");
    assert!(result_misses > 0.0, "cold pass must miss the result cache");
    if args.writer {
        let applied = sample_value(&samples, "eh_updates_applied_total").unwrap_or(0.0);
        assert!(
            applied >= writer_applies as f64,
            "METRICS reports {applied} applied updates, writer performed {writer_applies}"
        );
    }

    let qps = total as f64 / wall.as_secs_f64();
    let (p50, p99) = (latency.p50(), latency.p99());
    let server_p50 = field_u64(&stats_line, "query_p50_us");
    let server_p99 = field_u64(&stats_line, "query_p99_us");
    assert!(p50 >= 1 && p99 >= p50, "client latency percentiles must be finite and ordered");
    assert!(server_p50 >= 1, "server-side percentiles must be live");

    let mut table = TablePrinter::new(&["Measure", "Value"]);
    table.row(&["requests".into(), total.to_string()]);
    table.row(&["throughput (QPS)".into(), format!("{qps:.0}")]);
    table.row(&["client p50 (us)".into(), p50.to_string()]);
    table.row(&["client p99 (us)".into(), p99.to_string()]);
    table.row(&["server p50 (us)".into(), server_p50.to_string()]);
    table.row(&["server p99 (us)".into(), server_p99.to_string()]);
    table.row(&["result-cache hit ratio".into(), {
        format!("{:.3}", result_hits / (result_hits + result_misses))
    }]);
    if args.writer {
        table.row(&["writer applies".into(), writer_applies.to_string()]);
    }
    println!("\n{}", table.render());

    // Instrumentation-overhead gate: interleaved best-of runs so one
    // scheduler hiccup cannot fail the build. The cached request path is
    // the worst case for relative overhead — nothing amortizes the
    // atomics there.
    let rounds = if args.quick { 1000 } else { 3000 };
    let mut best_off = 0f64;
    let mut best_on = 0f64;
    for _ in 0..5 {
        best_off = best_off.max(warm_cached_qps(&store, &mix, rounds, false));
        best_on = best_on.max(warm_cached_qps(&store, &mix, rounds, true));
    }
    let overhead_pct = (1.0 - best_on / best_off) * 100.0;
    println!(
        "instrumentation overhead: {overhead_pct:.2}% \
         (uninstrumented {best_off:.0} QPS, instrumented {best_on:.0} QPS, gate {:.1}%)",
        args.max_overhead_pct
    );
    assert!(
        overhead_pct <= args.max_overhead_pct,
        "instrumented warm cached throughput fell {overhead_pct:.2}% below uninstrumented \
         (gate {:.1}%)",
        args.max_overhead_pct
    );

    let mut report = BenchReport::new("serving");
    report
        .meta("universities", args.universities)
        .meta("seed", args.seed)
        .meta("sessions", args.sessions)
        .meta("quick", args.quick)
        .meta("writer", args.writer)
        .metric("requests", total as f64)
        .metric("qps", qps)
        .metric("p50_us", p50 as f64)
        .metric("p99_us", p99 as f64)
        .metric("server_p50_us", server_p50 as f64)
        .metric("server_p99_us", server_p99 as f64)
        .metric("result_hit_ratio", result_hits / (result_hits + result_misses))
        .metric("overhead_pct", overhead_pct);
    match report.write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH json: {e}"),
    }
}
