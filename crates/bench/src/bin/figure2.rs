//! Regenerates **Figure 2** of Aberger et al. (ICDE 2016): the GHD chosen
//! for LUBM query 2 — a fractional-hypertree-width-3/2 decomposition with
//! the triangle over {x, y, z} in one bag and the three `rdf:type`
//! selection atoms in their own nodes below it.

use eh_bench::HarnessArgs;
use eh_lubm::queries::{lubm_query, lubm_sparql};
use eh_lubm::{generate_store, GeneratorConfig};
use emptyheaded::{Engine, OptFlags};

fn main() {
    let args = HarnessArgs::from_env();
    let store = generate_store(&GeneratorConfig::tiny(args.universities.clamp(1, 2)));
    let q = lubm_query(2, &store).expect("query 2");

    println!("Figure 2 reproduction: GHD for LUBM query 2\n");
    println!("{}\n", lubm_sparql(2).unwrap());

    let engine = Engine::new(store.clone(), OptFlags::all());
    let plan = engine.plan(&q).expect("plannable");
    println!("chosen plan (selection-aware GHD, §III-B2):");
    println!("{}", plan.render(&q));
    println!(
        "fhw = {} (the paper's Figure 2 GHD has fhw 1.5; any co-optimal rooting is acceptable)",
        plan.width
    );

    let plain = Engine::new(store.clone(), OptFlags { ghd_pushdown: false, ..OptFlags::all() });
    let plain_plan = plain.plan(&q).expect("plannable");
    println!("\nfor contrast, the plain (min fhw, min height) GHD of §II-C:");
    println!("{}", plain_plan.render(&q));

    let result = engine.run_plan(&q, &plan);
    println!("query 2 result cardinality at this scale: {}", result.cardinality());
}
