//! Thread-scaling harness for the parallel execution runtime: wall-clock
//! time of the worst-case optimal engine at 1/2/4/8 worker threads on the
//! LUBM triangle queries (2 and 9), the path query (8), and an
//! unselective two-hop path, with per-thread-count speedups.
//!
//! Before timing, every configuration's result is checked identical to
//! the sequential one (the runtime's determinism contract), and every
//! engine is warmed so the measurement excludes index construction
//! (paper §IV-A4). Index (trie) construction itself is parallel in
//! `Engine::warm`; it is reported separately.
//!
//! ```text
//! cargo run --release -p eh-bench --bin scaling -- --universities 1
//! ```
//!
//! Speedups require real cores: on a single-core host every thread count
//! measures the same serial machine and the table degenerates to ~1.00x.

use std::time::{Duration, Instant};

use eh_bench::{fmt_ms, measure, BenchReport, HarnessArgs, TablePrinter};
use eh_lubm::queries::lubm_query;
use eh_lubm::{generate_store, pred_iri, GeneratorConfig, Predicate};
use eh_par::RuntimeConfig;
use eh_query::{ConjunctiveQuery, QueryBuilder};
use eh_rdf::TripleStore;
use emptyheaded::{Engine, OptFlags, PlannerConfig, SharedStore};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// An unselective two-hop path — student ⋈ takesCourse ⋈ teacherOf —
/// whose outer loop is the full student set: the purest test of the
/// morsel-partitioned outer attribute.
fn two_hop_path(store: &TripleStore) -> Option<ConjunctiveQuery> {
    let takes = pred_iri(Predicate::TakesCourse);
    let teaches = pred_iri(Predicate::TeacherOf);
    let takes_id = store.resolve_iri(&takes)?;
    let teaches_id = store.resolve_iri(&teaches)?;
    let mut qb = QueryBuilder::new();
    let (s, c, t) = (qb.var("student"), qb.var("course"), qb.var("teacher"));
    qb.atom(&takes, takes_id, s, c).atom(&teaches, teaches_id, t, c);
    qb.select(vec![s, c, t]).build().ok()
}

fn main() {
    let args = HarnessArgs::from_env();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let cfg = GeneratorConfig::scale(args.universities).with_seed(args.seed);
    eprintln!("generating LUBM({}) ...", args.universities);
    let store = SharedStore::new(generate_store(&cfg));
    println!(
        "Thread scaling — LUBM({}) = {} triples, {} runs averaged (best/worst dropped), {} cores",
        args.universities,
        store.read().stats().triples,
        args.runs,
        cores
    );
    if cores < THREAD_COUNTS[THREAD_COUNTS.len() - 1] {
        println!("note: only {cores} hardware threads available; expect flat scaling beyond that");
    }

    let queries: Vec<(String, ConjunctiveQuery)> = {
        let guard = store.read();
        [2u32, 9, 8]
            .into_iter()
            .map(|n| (format!("Q{n}"), lubm_query(n, &guard).expect("workload query")))
            .chain(two_hop_path(&guard).map(|q| ("2-hop".to_string(), q)))
            .collect()
    };

    let mut report = BenchReport::new("scaling");
    report
        .meta("universities", args.universities)
        .meta("seed", args.seed)
        .meta("cores", cores)
        .metric("triples", store.read().stats().triples as f64);
    let mut table = TablePrinter::new(&["Query", "Threads", "Warm (ms)", "Join (ms)", "Speedup"]);
    for (label, q) in &queries {
        let reference = Engine::new(store.clone(), OptFlags::all()).run(q).expect("reference");
        let mut baseline: Option<Duration> = None;
        for threads in THREAD_COUNTS {
            let config = PlannerConfig::with_flags(OptFlags::all())
                .with_runtime(RuntimeConfig::with_threads(threads));
            let engine = Engine::with_config(store.clone(), config);
            let plan = engine.plan(q).expect("plannable");
            // Parallel index construction (fresh catalog per engine).
            let t0 = Instant::now();
            engine.warm(q).expect("warm");
            let warm = t0.elapsed();
            // Determinism check against the sequential reference.
            let result = engine.run_plan(q, &plan);
            assert_eq!(result, reference, "{label}: parallel result diverged at {threads} threads");

            let joined = measure(args.runs, || {
                let _ = engine.run_plan(q, &plan);
            });
            let base = *baseline.get_or_insert(joined);
            table.row(&[
                label.clone(),
                threads.to_string(),
                fmt_ms(warm),
                fmt_ms(joined),
                format!("{:.2}x", base.as_secs_f64() / joined.as_secs_f64()),
            ]);
            report
                .metric_ms(&format!("{label}.t{threads}.warm_ms"), warm)
                .metric_ms(&format!("{label}.t{threads}.join_ms"), joined)
                .metric(
                    &format!("{label}.t{threads}.speedup"),
                    base.as_secs_f64() / joined.as_secs_f64(),
                );
        }
    }
    println!("\n{}", table.render());
    match report.write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH json: {e}"),
    }
}
