//! Criterion version of the Table II comparison: every LUBM workload
//! query on every engine, at LUBM(1). The `table2` binary produces the
//! paper-formatted table at larger scales; this bench gives
//! statistically robust per-query numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use eh_baselines::{LogicBloxStyle, MonetDbStyle, QueryEngine, Rdf3xStyle, TripleBitStyle};
use eh_lubm::queries::{lubm_query, QUERY_NUMBERS};
use eh_lubm::{generate_store, GeneratorConfig};
use emptyheaded::{Engine, OptFlags};

fn bench_lubm(c: &mut Criterion) {
    let store = generate_store(&GeneratorConfig::scale(1));
    let eh = Engine::new(store.clone(), OptFlags::all());
    let triplebit = TripleBitStyle::new(&store);
    let rdf3x = Rdf3xStyle::new(&store);
    let monetdb = MonetDbStyle::new(&store);
    let logicblox = LogicBloxStyle::new(&store);

    let mut g = c.benchmark_group("lubm");
    g.sample_size(15);
    for qn in QUERY_NUMBERS {
        let q = lubm_query(qn, &store).expect("workload query");
        let plan = eh.plan(&q).expect("plannable");
        eh.warm(&q).expect("warm");
        g.bench_with_input(BenchmarkId::new("emptyheaded", qn), &qn, |b, _| {
            b.iter(|| black_box(eh.run_plan(&q, &plan).cardinality()))
        });
        let engines: [&dyn QueryEngine; 4] = [&triplebit, &rdf3x, &monetdb, &logicblox];
        for engine in engines {
            g.bench_with_input(BenchmarkId::new(engine.name(), qn), &qn, |b, _| {
                b.iter(|| black_box(engine.execute(&q).len()))
            });
        }
    }
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(12);
    targets = bench_lubm);
criterion_main!(benches);
