//! Microbenchmarks for the set-layout kernels (paper §II-A2 / §III-A):
//! intersection across layout pairs and densities, membership probes, and
//! a density-threshold ablation around the paper's 1/256 heuristic.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use eh_bench::synth_set;
use eh_setops::{
    intersect_all_into, intersect_all_refs_fold, intersect_count_all_refs, IntersectScratch,
    Layout, Set, SetRef,
};

fn bench_intersections(c: &mut Criterion) {
    let mut g = c.benchmark_group("intersect");
    for (label, stride) in [("dense", 2u32), ("sparse", 512u32)] {
        let a_vals = synth_set(10_000, stride, 7);
        let b_vals = synth_set(10_000, stride, 13);
        for (la, lb) in [
            (Layout::UintArray, Layout::UintArray),
            (Layout::Bitset, Layout::Bitset),
            (Layout::UintArray, Layout::Bitset),
        ] {
            let a = Set::from_sorted_with(&a_vals, la);
            let b = Set::from_sorted_with(&b_vals, lb);
            g.bench_with_input(
                BenchmarkId::new(format!("{la}x{lb}"), label),
                &(&a, &b),
                |bench, (a, b)| bench.iter(|| black_box(a.intersect_count(b))),
            );
        }
    }
    g.finish();
}

fn bench_skewed_gallop(c: &mut Criterion) {
    let mut g = c.benchmark_group("skewed");
    let large = synth_set(1_000_000, 4, 3);
    let small = synth_set(100, 40_000, 11);
    let lu = Set::from_sorted_with(&large, Layout::UintArray);
    let su = Set::from_sorted_with(&small, Layout::UintArray);
    g.bench_function("gallop_100_in_1M", |b| b.iter(|| black_box(su.intersect_count(&lu))));
    let lb = Set::from_sorted_with(&large, Layout::Bitset);
    g.bench_function("probe_100_in_1M_bitset", |b| b.iter(|| black_box(su.intersect_count(&lb))));
    g.finish();
}

fn bench_membership(c: &mut Criterion) {
    // The §III-A selection probe: O(1) bitset vs O(log n) binary search.
    let vals = synth_set(100_000, 3, 5);
    let probes = synth_set(1_000, 300, 17);
    let mut g = c.benchmark_group("contains");
    for layout in [Layout::UintArray, Layout::Bitset] {
        let s = Set::from_sorted_with(&vals, layout);
        g.bench_function(format!("{layout}"), |b| {
            b.iter(|| {
                let mut hits = 0u32;
                for &p in &probes {
                    hits += u32::from(s.contains(p));
                }
                black_box(hits)
            })
        });
    }
    g.finish();
}

fn bench_multiway_adaptive(c: &mut Criterion) {
    // The tentpole comparison: adaptive k-way driver (scratch-reusing,
    // SIMD, kernel-selected) vs the preserved pre-PR pairwise fold, on
    // the same workload shapes the `setops_kernels` harness gates in CI.
    // Both sides are measured through to consumed values (the executor
    // iterates every intersection it computes).
    let mut g = c.benchmark_group("multiway");
    let large1 = synth_set(200_000, 3, 7);
    let small: Vec<u32> = large1.iter().copied().step_by(24).collect();
    let large2 = synth_set(200_000, 3, 13);
    let dense1 = synth_set(200_000, 12, 7);
    let dense2 = synth_set(200_000, 12, 13);
    let dense3 = synth_set(200_000, 12, 29);
    let cases: Vec<(&str, Vec<Set>)> = vec![
        (
            "uint_skewed",
            vec![
                Set::from_sorted_with(&small, Layout::UintArray),
                Set::from_sorted_with(&large1, Layout::UintArray),
                Set::from_sorted_with(&large2, Layout::UintArray),
            ],
        ),
        (
            "bitset",
            vec![
                Set::from_sorted_with(&dense1, Layout::Bitset),
                Set::from_sorted_with(&dense2, Layout::Bitset),
                Set::from_sorted_with(&dense3, Layout::Bitset),
            ],
        ),
        (
            "mixed",
            vec![
                Set::from_sorted_with(&small, Layout::UintArray),
                Set::from_sorted_with(&dense1, Layout::Bitset),
                Set::from_sorted_with(&large2, Layout::UintArray),
            ],
        ),
    ];
    for (label, sets) in &cases {
        let refs: Vec<SetRef<'_>> = sets.iter().map(|s| s.as_ref()).collect();
        g.bench_with_input(BenchmarkId::new("fold", label), &refs, |bench, refs| {
            bench.iter(|| {
                let set = intersect_all_refs_fold(black_box(refs)).expect("non-empty");
                black_box(set.iter().map(u64::from).sum::<u64>())
            })
        });
        let mut scratch = IntersectScratch::new();
        g.bench_with_input(BenchmarkId::new("adaptive", label), &refs, |bench, refs| {
            bench.iter(|| {
                let vals = intersect_all_into(black_box(refs), &mut scratch);
                black_box(vals.iter().map(|&v| v as u64).sum::<u64>())
            })
        });
        g.bench_with_input(BenchmarkId::new("count", label), &refs, |bench, refs| {
            bench.iter(|| black_box(intersect_count_all_refs(black_box(refs))))
        });
    }
    g.finish();
}

fn bench_density_threshold(c: &mut Criterion) {
    // Ablation: intersection cost as density crosses the paper's 1/256
    // bitset threshold.
    let mut g = c.benchmark_group("density_threshold");
    for stride in [16u32, 64, 256, 1024] {
        let a_vals = synth_set(20_000, stride, 7);
        let b_vals = synth_set(20_000, stride, 13);
        let auto_a = Set::from_sorted(&a_vals);
        let auto_b = Set::from_sorted(&b_vals);
        let uint_a = Set::from_sorted_with(&a_vals, Layout::UintArray);
        let uint_b = Set::from_sorted_with(&b_vals, Layout::UintArray);
        g.bench_with_input(BenchmarkId::new("auto", stride), &stride, |bench, _| {
            bench.iter(|| black_box(auto_a.intersect_count(&auto_b)))
        });
        g.bench_with_input(BenchmarkId::new("uint_only", stride), &stride, |bench, _| {
            bench.iter(|| black_box(uint_a.intersect_count(&uint_b)))
        });
    }
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(12);
    targets =
    bench_intersections,
    bench_skewed_gallop,
    bench_membership,
    bench_multiway_adaptive,
    bench_density_threshold
);
criterion_main!(benches);
