//! Microbenchmarks for the set-layout kernels (paper §II-A2 / §III-A):
//! intersection across layout pairs and densities, membership probes, and
//! a density-threshold ablation around the paper's 1/256 heuristic.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use eh_setops::{Layout, Set};

/// Deterministic pseudo-random sorted set of `n` values with the given
/// stride range (larger stride = sparser set).
fn synth_set(n: usize, max_stride: u32, seed: u64) -> Vec<u32> {
    let mut state = seed | 1;
    let mut v = 0u32;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        v = v.wrapping_add(1 + ((state >> 33) as u32 % max_stride));
        out.push(v);
    }
    out
}

fn bench_intersections(c: &mut Criterion) {
    let mut g = c.benchmark_group("intersect");
    for (label, stride) in [("dense", 2u32), ("sparse", 512u32)] {
        let a_vals = synth_set(10_000, stride, 7);
        let b_vals = synth_set(10_000, stride, 13);
        for (la, lb) in [
            (Layout::UintArray, Layout::UintArray),
            (Layout::Bitset, Layout::Bitset),
            (Layout::UintArray, Layout::Bitset),
        ] {
            let a = Set::from_sorted_with(&a_vals, la);
            let b = Set::from_sorted_with(&b_vals, lb);
            g.bench_with_input(
                BenchmarkId::new(format!("{la}x{lb}"), label),
                &(&a, &b),
                |bench, (a, b)| bench.iter(|| black_box(a.intersect_count(b))),
            );
        }
    }
    g.finish();
}

fn bench_skewed_gallop(c: &mut Criterion) {
    let mut g = c.benchmark_group("skewed");
    let large = synth_set(1_000_000, 4, 3);
    let small = synth_set(100, 40_000, 11);
    let lu = Set::from_sorted_with(&large, Layout::UintArray);
    let su = Set::from_sorted_with(&small, Layout::UintArray);
    g.bench_function("gallop_100_in_1M", |b| b.iter(|| black_box(su.intersect_count(&lu))));
    let lb = Set::from_sorted_with(&large, Layout::Bitset);
    g.bench_function("probe_100_in_1M_bitset", |b| b.iter(|| black_box(su.intersect_count(&lb))));
    g.finish();
}

fn bench_membership(c: &mut Criterion) {
    // The §III-A selection probe: O(1) bitset vs O(log n) binary search.
    let vals = synth_set(100_000, 3, 5);
    let probes = synth_set(1_000, 300, 17);
    let mut g = c.benchmark_group("contains");
    for layout in [Layout::UintArray, Layout::Bitset] {
        let s = Set::from_sorted_with(&vals, layout);
        g.bench_function(format!("{layout}"), |b| {
            b.iter(|| {
                let mut hits = 0u32;
                for &p in &probes {
                    hits += u32::from(s.contains(p));
                }
                black_box(hits)
            })
        });
    }
    g.finish();
}

fn bench_density_threshold(c: &mut Criterion) {
    // Ablation: intersection cost as density crosses the paper's 1/256
    // bitset threshold.
    let mut g = c.benchmark_group("density_threshold");
    for stride in [16u32, 64, 256, 1024] {
        let a_vals = synth_set(20_000, stride, 7);
        let b_vals = synth_set(20_000, stride, 13);
        let auto_a = Set::from_sorted(&a_vals);
        let auto_b = Set::from_sorted(&b_vals);
        let uint_a = Set::from_sorted_with(&a_vals, Layout::UintArray);
        let uint_b = Set::from_sorted_with(&b_vals, Layout::UintArray);
        g.bench_with_input(BenchmarkId::new("auto", stride), &stride, |bench, _| {
            bench.iter(|| black_box(auto_a.intersect_count(&auto_b)))
        });
        g.bench_with_input(BenchmarkId::new("uint_only", stride), &stride, |bench, _| {
            bench.iter(|| black_box(uint_a.intersect_count(&uint_b)))
        });
    }
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(12);
    targets =
    bench_intersections,
    bench_skewed_gallop,
    bench_membership,
    bench_density_threshold
);
criterion_main!(benches);
