//! Microbenchmarks for trie construction and probing (paper §II-A):
//! build cost per layout policy, order, and representation (Vec-of-Set
//! `Trie` vs arena `FrozenTrie`), and the §III-A covering-index probe
//! pattern on both representations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use eh_lubm::{generate_store, pred_iri, GeneratorConfig, Predicate};
use eh_trie::{FrozenTrie, LayoutPolicy, Trie, TupleBuffer};

fn bench_trie_build(c: &mut Criterion) {
    let store = generate_store(&GeneratorConfig::scale(1));
    let takes = store.table_by_name(&pred_iri(Predicate::TakesCourse)).expect("table");
    let mut g = c.benchmark_group("trie_build");
    g.sample_size(20);
    for (label, policy) in [("auto", LayoutPolicy::Auto), ("uint_only", LayoutPolicy::UintOnly)] {
        g.bench_with_input(BenchmarkId::new("takesCourse_so", label), &policy, |b, &policy| {
            b.iter(|| {
                let t = Trie::from_sorted(TupleBuffer::from_pairs(takes.so_pairs()), policy);
                black_box(t.num_tuples())
            })
        });
        g.bench_with_input(BenchmarkId::new("takesCourse_os", label), &policy, |b, &policy| {
            b.iter(|| {
                let t = Trie::from_sorted(TupleBuffer::from_pairs(takes.os_pairs()), policy);
                black_box(t.num_tuples())
            })
        });
        g.bench_with_input(
            BenchmarkId::new("takesCourse_so_frozen", label),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    let t =
                        FrozenTrie::from_sorted(TupleBuffer::from_pairs(takes.so_pairs()), policy);
                    black_box(t.num_tuples())
                })
            },
        );
    }
    g.finish();
}

fn bench_trie_probe(c: &mut Criterion) {
    let store = generate_store(&GeneratorConfig::scale(1));
    let takes = store.table_by_name(&pred_iri(Predicate::TakesCourse)).expect("table");
    let subjects: Vec<u32> = takes.so_pairs().iter().map(|&(s, _)| s).step_by(37).collect();
    let mut g = c.benchmark_group("trie_probe");
    for (label, policy) in [("auto", LayoutPolicy::Auto), ("uint_only", LayoutPolicy::UintOnly)] {
        let trie = Trie::from_sorted(TupleBuffer::from_pairs(takes.so_pairs()), policy);
        g.bench_function(format!("contains_prefix/{label}"), |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for &s in &subjects {
                    hits += usize::from(trie.contains_prefix(&[s]));
                }
                black_box(hits)
            })
        });
        let frozen = FrozenTrie::from_sorted(TupleBuffer::from_pairs(takes.so_pairs()), policy);
        g.bench_function(format!("contains_prefix_frozen/{label}"), |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for &s in &subjects {
                    hits += usize::from(frozen.contains_prefix(&[s]));
                }
                black_box(hits)
            })
        });
    }
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(12);
    targets = bench_trie_build, bench_trie_probe);
criterion_main!(benches);
