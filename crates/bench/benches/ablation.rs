//! Criterion version of the Table I ablation: LUBM queries 1, 2, 4, 7,
//! 8, 14 under each cumulative optimization configuration (+Layout,
//! +Attribute, +GHD, +Pipelining), plus per-flag toggles for the design
//! choices DESIGN.md calls out.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use eh_lubm::queries::lubm_query;
use eh_lubm::{generate_store, GeneratorConfig};
use emptyheaded::{Engine, OptFlags, SharedStore};

const QUERIES: [u32; 6] = [1, 2, 4, 7, 8, 14];
const LABELS: [&str; 5] = ["base", "+layout", "+attribute", "+ghd", "+pipelining"];

fn bench_cumulative(c: &mut Criterion) {
    let store = SharedStore::new(generate_store(&GeneratorConfig::scale(1)));
    let mut g = c.benchmark_group("table1_cumulative");
    g.sample_size(15);
    for qn in QUERIES {
        let q = lubm_query(qn, &store.read()).expect("workload query");
        for (k, label) in LABELS.iter().enumerate() {
            let engine = Engine::new(store.clone(), OptFlags::cumulative(k));
            let plan = engine.plan(&q).expect("plannable");
            engine.warm(&q).expect("warm");
            g.bench_with_input(BenchmarkId::new(*label, qn), &qn, |b, _| {
                b.iter(|| black_box(engine.run_plan(&q, &plan).cardinality()))
            });
        }
    }
    g.finish();
}

fn bench_single_flag(c: &mut Criterion) {
    // Isolate each optimization against the all-on configuration (leave-
    // one-out), the dual view of the paper's cumulative columns.
    let store = SharedStore::new(generate_store(&GeneratorConfig::scale(1)));
    let mut g = c.benchmark_group("table1_leave_one_out");
    g.sample_size(15);
    let variants: [(&str, OptFlags); 5] = [
        ("all", OptFlags::all()),
        ("no_layout", OptFlags { layouts: false, ..OptFlags::all() }),
        ("no_attribute", OptFlags { attr_reorder: false, ..OptFlags::all() }),
        ("no_ghd", OptFlags { ghd_pushdown: false, ..OptFlags::all() }),
        ("no_pipelining", OptFlags { pipelining: false, ..OptFlags::all() }),
    ];
    for qn in [4u32, 8, 14] {
        let q = lubm_query(qn, &store.read()).expect("workload query");
        for (label, flags) in variants {
            let engine = Engine::new(store.clone(), flags);
            let plan = engine.plan(&q).expect("plannable");
            engine.warm(&q).expect("warm");
            g.bench_with_input(BenchmarkId::new(label, qn), &qn, |b, _| {
                b.iter(|| black_box(engine.run_plan(&q, &plan).cardinality()))
            });
        }
    }
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(12);
    targets = bench_cumulative, bench_single_flag);
criterion_main!(benches);
