//! Parallel execution in three steps: configure worker threads, warm the
//! engine (parallel index build), and run — then verify the parallel
//! result is bit-identical to the sequential one.
//!
//! ```text
//! cargo run --release --example parallel_scaling
//! ```

use std::time::Instant;

use wcoj_rdf::emptyheaded::{Engine, OptFlags, PlannerConfig, RuntimeConfig};
use wcoj_rdf::lubm::queries::lubm_query;
use wcoj_rdf::lubm::{generate_store, GeneratorConfig};

fn main() {
    let store = generate_store(&GeneratorConfig::scale(1));
    let q = lubm_query(2, &store).expect("LUBM query 2 — the triangle");

    // Sequential reference. Following the paper's timing methodology
    // (§IV-A4), plan and warm first so the measurement is join-only.
    let sequential = Engine::new(store.clone(), OptFlags::all());
    let plan = sequential.plan(&q).expect("plan");
    sequential.warm(&q).expect("warm");
    let t0 = Instant::now();
    let reference = sequential.run_plan(&q, &plan);
    println!("sequential: {} rows in {:?}", reference.cardinality(), t0.elapsed());

    // Parallel engine: same API, plus a runtime configuration. Results
    // are bit-identical by construction (morsels merge in deterministic
    // order), so answers never depend on the thread count.
    for threads in [2, 4, 8] {
        let config = PlannerConfig::with_flags(OptFlags::all())
            .with_runtime(RuntimeConfig::with_threads(threads));
        let engine = Engine::with_config(store.clone(), config);
        let plan = engine.plan(&q).expect("plan");
        engine.warm(&q).expect("parallel warm");
        let t0 = Instant::now();
        let result = engine.run_plan(&q, &plan);
        println!("{threads} threads: {} rows in {:?}", result.cardinality(), t0.elapsed());
        assert_eq!(result, reference, "parallel result must be bit-identical");
    }
    println!("all thread counts agreed bit-for-bit");
}
