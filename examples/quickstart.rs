//! Quickstart: generate a small LUBM dataset, run a SPARQL query through
//! the worst-case optimal join engine, and decode the answers.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use wcoj_rdf::emptyheaded::{Engine, OptFlags};
use wcoj_rdf::lubm::{generate_store, GeneratorConfig};

fn main() {
    // 1. A deterministic LUBM(1) dataset (≈100k triples; use
    //    `GeneratorConfig::tiny(1)` for unit-test-sized data).
    let store = generate_store(&GeneratorConfig::scale(1));
    let stats = store.stats();
    println!(
        "generated LUBM(1): {} triples, {} predicates, {} distinct terms",
        stats.triples, stats.predicates, stats.terms
    );

    // 2. An engine with all of the paper's optimizations enabled.
    let engine = Engine::new(store.clone(), OptFlags::all());

    // 3. Ask a SPARQL question: graduate students and the university
    //    their department belongs to (a join across three predicates).
    let query = r#"
        PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
        PREFIX ub: <http://www.lehigh.edu/~zhp2/2004/0401/univ-bench.owl#>
        SELECT ?student ?university WHERE {
            ?student rdf:type ub:GraduateStudent .
            ?student ub:memberOf ?dept .
            ?dept ub:subOrganizationOf ?university .
        }
    "#;
    let result = engine.run_sparql(query).expect("valid query");
    println!("{} (student, university) pairs; first five:", result.cardinality());
    for i in 0..result.cardinality().min(5) {
        let row = result.decode_row(&store, i);
        println!("  {}  ->  {}", row[0].as_str(), row[1].as_str());
    }

    // 4. Inspect the physical plan the engine chose.
    let q = wcoj_rdf::query::parse_sparql(query, &store).expect("parses");
    let plan = engine.plan(&q).expect("plannable");
    println!("\nphysical plan:\n{}", plan.render(&q));

    // 5. `SELECT *` projects every pattern variable in order of first
    //    appearance (and a trailing `.` before `}` is fine).
    let star = engine
        .run_sparql(
            "PREFIX ub: <http://www.lehigh.edu/~zhp2/2004/0401/univ-bench.owl#>
             SELECT * WHERE { ?prof ub:headOf ?dept . ?dept ub:subOrganizationOf ?univ . }",
        )
        .expect("valid query");
    println!("SELECT * bound {:?}: {} (prof, dept, univ) rows", star.columns(), star.cardinality());
}
