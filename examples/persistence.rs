//! Persistence and cold start: `SAVE` a live service, then restart it
//! from the snapshot and watch the first query get served warm.
//!
//! ```text
//! cargo run --release --example persistence
//! ```
//!
//! The example (1) builds LUBM tiny(1) the slow way and serves it over
//! TCP, (2) persists the live store with the protocol's `SAVE` verb,
//! (3) shuts the server down, (4) "restarts" by loading the snapshot —
//! no N-Triples parse, no sorting, hot tries preloaded — and (5) shows
//! the restarted service answering the same query byte-identically,
//! with its very first answer skipping index construction.

use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use wcoj_rdf::emptyheaded::{OptFlags, PlannerConfig};
use wcoj_rdf::lubm::queries::lubm_sparql;
use wcoj_rdf::lubm::{generate_store, GeneratorConfig};
use wcoj_rdf::srv::{serve, Client, QueryService, ServiceConfig};

fn service_config() -> ServiceConfig {
    ServiceConfig {
        planner: PlannerConfig::with_flags(OptFlags::all()).with_threads(2),
        result_cache_bytes: 16 << 20,
        plan_cache_entries: 1024,
        server_sessions: 4,
        record_metrics: true,
        slow_query_ms: None,
    }
}

/// Serve `service` on an ephemeral port, run `session` against it, then
/// drain the server.
fn with_server(service: &QueryService, session: impl FnOnce(&mut Client)) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
    let addr = listener.local_addr().expect("local addr");
    let shutdown = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let (service_ref, shutdown_ref) = (&service, &shutdown);
        scope.spawn(move || serve(service_ref, listener, shutdown_ref));
        let mut client = Client::connect(addr).expect("connect");
        session(&mut client);
        client.send("QUIT").ok();
        drop(client);
        shutdown.store(true, Ordering::Release);
    });
}

fn main() {
    let snap_path =
        std::env::temp_dir().join(format!("eh-persistence-{}.snap", std::process::id()));
    let q2 = lubm_sparql(2).expect("LUBM query 2");

    // --- first life: cold build, serve, SAVE ------------------------------
    let t0 = Instant::now();
    let store = generate_store(&GeneratorConfig::tiny(1));
    let service = QueryService::new(store, service_config());
    println!("cold build: {:.1} ms", t0.elapsed().as_secs_f64() * 1e3);

    let mut first_answer = String::new();
    with_server(&service, |client| {
        first_answer = client.query(&q2).expect("query 2");
        println!(
            "first life answered query 2: {}",
            first_answer.lines().next().unwrap_or_default()
        );
        let saved = client.send(&format!("SAVE {}", snap_path.display())).expect("SAVE");
        print!("SAVE -> {saved}");
    });
    drop(service); // the process "restarts" here

    // --- second life: restart from the snapshot ---------------------------
    let t0 = Instant::now();
    let restarted =
        QueryService::from_snapshot(&snap_path, service_config()).expect("snapshot loads");
    let load_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "restart from snapshot: {load_ms:.1} ms, {} tries already resident",
        restarted.engine().catalog().cached_tries()
    );

    with_server(&restarted, |client| {
        let t0 = Instant::now();
        let warm_answer = client.query(&q2).expect("query 2 after restart");
        println!(
            "restarted service served its FIRST query in {:.1} ms (no index build — \
             the tries came off disk)",
            t0.elapsed().as_secs_f64() * 1e3
        );
        assert_eq!(warm_answer, first_answer, "restart must be invisible to clients");
        println!("byte-identical to the first life's answer ✓");
    });

    std::fs::remove_file(&snap_path).ok();
}
