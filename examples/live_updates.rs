//! Live updates over the wire: start a serving tier, mutate the store
//! through the line protocol, and watch answers (and caches) follow.
//!
//! ```text
//! cargo run --release --example live_updates
//! ```
//!
//! `INSERT`/`DELETE` lines stage N-Triples into the connection's batch;
//! `APPLY` applies the batch atomically — deletes first, then inserts —
//! invalidating only the changed predicates' tries and advancing the
//! epoch that retires cached plans and results.

use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};

use wcoj_rdf::emptyheaded::{OptFlags, PlannerConfig};
use wcoj_rdf::rdf::{parse_ntriples, TripleStore};
use wcoj_rdf::srv::{Client, QueryService, ServiceConfig};

const DATA: &str = r#"
<http://ex/alice> <http://ex/follows> <http://ex/bob> .
<http://ex/bob>   <http://ex/follows> <http://ex/carol> .
<http://ex/alice> <http://ex/follows> <http://ex/carol> .
"#;

fn main() {
    let store = TripleStore::from_triples(parse_ntriples(DATA).expect("well-formed N-Triples"));
    let service = QueryService::new(
        store,
        ServiceConfig {
            planner: PlannerConfig::with_flags(OptFlags::all()).with_threads(2),
            result_cache_bytes: 16 << 20,
            plan_cache_entries: 1024,
            server_sessions: 4,
            record_metrics: true,
            slow_query_ms: None,
        },
    );
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
    let addr = listener.local_addr().expect("local addr");
    let shutdown = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let (service_ref, shutdown_ref) = (&service, &shutdown);
        scope.spawn(move || wcoj_rdf::srv::serve(service_ref, listener, shutdown_ref));

        let mut client = Client::connect(addr).expect("connect");
        let triangles = "SELECT ?x ?y ?z WHERE { \
                         ?x <http://ex/follows> ?y . \
                         ?y <http://ex/follows> ?z . \
                         ?x <http://ex/follows> ?z }";

        let before = client.query(triangles).expect("query");
        println!("before update: {}", before.lines().next().unwrap_or_default());

        // Stage a batch: close a second triangle, retract one edge of the
        // first. Nothing is visible until APPLY.
        for line in [
            "INSERT <http://ex/carol> <http://ex/follows> <http://ex/dave> .",
            "INSERT <http://ex/bob>   <http://ex/follows> <http://ex/dave> .",
            "DELETE <http://ex/alice> <http://ex/follows> <http://ex/bob> .",
        ] {
            println!("  {line}\n    -> {}", client.send(line).expect("stage").trim_end());
        }
        println!("  APPLY\n    -> {}", client.send("APPLY").expect("apply").trim_end());

        let after = client.query(triangles).expect("query");
        println!("after update:  {}", after.lines().next().unwrap_or_default());
        print!("{}", client.send("STATS").expect("stats"));

        client.send("QUIT").ok();
        drop(client);
        shutdown.store(true, Ordering::Release);
    });
    println!("server drained, bye");
}
