//! A miniature Table II: run the full LUBM workload on all five engines
//! at a configurable scale and print per-query times and cardinalities.
//! (The full harness with the paper's 7-run timing methodology lives in
//! `cargo run -p eh-bench --bin table2`.)
//!
//! ```text
//! cargo run --release --example lubm_benchmark
//! ```

use std::time::Instant;

use wcoj_rdf::baselines::{LogicBloxStyle, MonetDbStyle, QueryEngine, Rdf3xStyle, TripleBitStyle};
use wcoj_rdf::emptyheaded::{Engine, OptFlags};
use wcoj_rdf::lubm::queries::{lubm_query, CYCLIC_QUERIES, QUERY_NUMBERS};
use wcoj_rdf::lubm::{generate_store, GeneratorConfig};

fn main() {
    let scale = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2u32);
    let store = generate_store(&GeneratorConfig::scale(scale));
    println!("LUBM({scale}): {} triples\n", store.num_triples());

    let eh = Engine::new(store.clone(), OptFlags::all());
    let triplebit = TripleBitStyle::new(&store);
    let rdf3x = Rdf3xStyle::new(&store);
    let monetdb = MonetDbStyle::new(&store);
    let logicblox = LogicBloxStyle::new(&store);

    println!(
        "{:<5} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}  shape",
        "query", "tuples", "EH", "TripleBit", "RDF-3X", "MonetDB", "LogicBlox"
    );
    for qn in QUERY_NUMBERS {
        let q = lubm_query(qn, &store).expect("workload query");
        let plan = eh.plan(&q).expect("plannable");
        eh.warm(&q).expect("warm");

        let t0 = Instant::now();
        let r = eh.run_plan(&q, &plan);
        let t_eh = t0.elapsed();

        let mut times = Vec::new();
        let engines: [&dyn QueryEngine; 4] = [&triplebit, &rdf3x, &monetdb, &logicblox];
        for e in engines {
            let t0 = Instant::now();
            let out = e.execute(&q);
            times.push(t0.elapsed());
            assert_eq!(out.len(), r.cardinality(), "Q{qn}: {} disagrees", e.name());
        }

        let shape = if CYCLIC_QUERIES.contains(&qn) { "cyclic" } else { "acyclic" };
        println!(
            "Q{qn:<4} {:>8} {:>9.2?} {:>10.2?} {:>10.2?} {:>10.2?} {:>10.2?}  {shape}",
            r.cardinality(),
            t_eh,
            times[0],
            times[1],
            times[2],
            times[3],
        );
    }
}
