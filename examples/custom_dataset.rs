//! Using the engine on your own RDF data: parse N-Triples text, load a
//! store, and query it — no LUBM involved.
//!
//! ```text
//! cargo run --release --example custom_dataset
//! ```

use wcoj_rdf::emptyheaded::{Engine, OptFlags};
use wcoj_rdf::rdf::{parse_ntriples, TripleStore};

const DATA: &str = r#"
# A small social/knowledge graph in N-Triples.
<http://ex/alice>  <http://ex/knows>    <http://ex/bob> .
<http://ex/alice>  <http://ex/knows>    <http://ex/carol> .
<http://ex/bob>    <http://ex/knows>    <http://ex/carol> .
<http://ex/carol>  <http://ex/knows>    <http://ex/dave> .
<http://ex/alice>  <http://ex/worksAt>  <http://ex/acme> .
<http://ex/bob>    <http://ex/worksAt>  <http://ex/acme> .
<http://ex/carol>  <http://ex/worksAt>  <http://ex/globex> .
<http://ex/alice>  <http://ex/name>     "Alice" .
<http://ex/bob>    <http://ex/name>     "Bob" .
<http://ex/carol>  <http://ex/name>     "Carol" .
"#;

fn main() {
    let triples = parse_ntriples(DATA).expect("well-formed N-Triples");
    let store = TripleStore::from_triples(triples);
    println!("loaded {} triples", store.num_triples());

    let engine = Engine::new(store.clone(), OptFlags::all());

    // Colleagues that know each other (a join with a cycle through
    // `knows` and `worksAt`).
    let result = engine
        .run_sparql(
            "PREFIX ex: <http://ex/>
             SELECT ?a ?b ?company WHERE {
                 ?a ex:knows ?b .
                 ?a ex:worksAt ?company .
                 ?b ex:worksAt ?company .
             }",
        )
        .expect("valid query");
    println!("colleagues that know each other:");
    for i in 0..result.cardinality() {
        let row = result.decode_row(&store, i);
        println!("  {} knows {} (both at {})", row[0].as_str(), row[1].as_str(), row[2].as_str());
    }

    // Names of everyone Alice knows.
    let result = engine
        .run_sparql(
            "PREFIX ex: <http://ex/>
             SELECT ?name WHERE { ex:alice ex:knows ?p . ?p ex:name ?name }",
        )
        .expect("valid query");
    let names: Vec<String> = (0..result.cardinality())
        .map(|i| result.decode_row(&store, i)[0].as_str().to_string())
        .collect();
    println!("Alice knows: {}", names.join(", "));
}
