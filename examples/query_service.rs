//! Serve a LUBM dataset over TCP and talk to it with the line protocol.
//!
//! ```text
//! cargo run --release --example query_service
//! ```
//!
//! The example starts a [`QueryService`] front end on an ephemeral local
//! port, connects two clients, runs the same query from both (the second
//! is answered from the result cache), prints the `STATS` line, and shuts
//! the server down.

use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};

use wcoj_rdf::emptyheaded::{OptFlags, PlannerConfig};
use wcoj_rdf::lubm::queries::lubm_sparql;
use wcoj_rdf::lubm::{generate_store, GeneratorConfig};
use wcoj_rdf::srv::{Client, QueryService, ServiceConfig};

fn main() {
    let store = generate_store(&GeneratorConfig::tiny(1));
    let service = QueryService::new(
        store.clone(),
        ServiceConfig {
            planner: PlannerConfig::with_flags(OptFlags::all()).with_threads(2),
            result_cache_bytes: 16 << 20,
            plan_cache_entries: 1024,
            server_sessions: 4,
            record_metrics: true,
            slow_query_ms: None,
        },
    );
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
    let addr = listener.local_addr().expect("local addr");
    println!("serving {} triples on {addr}", store.stats().triples);

    let shutdown = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let (service_ref, shutdown_ref) = (&service, &shutdown);
        scope.spawn(move || wcoj_rdf::srv::serve(service_ref, listener, shutdown_ref));

        let q2 = lubm_sparql(2).expect("LUBM query 2");
        let mut alice = Client::connect(addr).expect("connect");
        let mut bob = Client::connect(addr).expect("connect");

        let cold = alice.query(&q2).expect("query");
        let warm = bob.query(&q2).expect("query");
        assert_eq!(cold, warm, "cached answers are byte-identical");
        println!(
            "query 2 answered: {} response bytes, header {:?}",
            cold.len(),
            cold.lines().next().unwrap_or_default()
        );
        print!("{}", bob.send("STATS").expect("stats"));

        alice.send("QUIT").ok();
        bob.send("QUIT").ok();
        drop(alice);
        drop(bob);
        shutdown.store(true, Ordering::Release);
    });
    println!("server drained, bye");
}
