//! Triangle listing — the workload where worst-case optimal joins beat
//! every pairwise plan asymptotically (paper §I: any pairwise plan is
//! Ω(N²) while Generic-Join runs in O(N^{3/2})).
//!
//! Builds a random power-law-ish graph as RDF `edge` triples, lists its
//! triangles with the WCOJ engine and with the pairwise MonetDB-style
//! baseline, and reports the AGM bound alongside the actual output size.
//!
//! ```text
//! cargo run --release --example triangle_counting
//! ```

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wcoj_rdf::baselines::{MonetDbStyle, QueryEngine};
use wcoj_rdf::emptyheaded::{Engine, OptFlags};
use wcoj_rdf::lp::agm_bound;
use wcoj_rdf::query::QueryBuilder;
use wcoj_rdf::rdf::{Term, Triple, TripleStore};

fn main() {
    // A random graph with hubs (so triangles exist): 4000 nodes, 40k edges.
    let mut rng = StdRng::seed_from_u64(7);
    let nodes = 4_000u32;
    let edges = 40_000usize;
    let mut triples = Vec::with_capacity(edges);
    for _ in 0..edges {
        // Square the draw to bias towards low ids — crude hubs.
        let u = (rng.gen_range(0.0f64..1.0).powi(2) * f64::from(nodes)) as u32;
        let v = rng.gen_range(0..nodes);
        if u != v {
            triples.push(Triple::new(
                Term::iri(format!("n{u}")),
                Term::iri("edge"),
                Term::iri(format!("n{v}")),
            ));
        }
    }
    let store = TripleStore::from_triples(triples);
    let n = store.num_triples();
    println!("graph: {} distinct edges over {nodes} nodes", n);

    // The triangle query R(x,y) ⋈ R(y,z) ⋈ R(x,z).
    let pred = store.resolve_iri("edge").expect("edge predicate");
    let mut qb = QueryBuilder::new();
    let (x, y, z) = (qb.var("x"), qb.var("y"), qb.var("z"));
    qb.atom("edge", pred, x, y).atom("edge", pred, y, z).atom("edge", pred, x, z);
    let q = qb.select(vec![x, y, z]).build().expect("valid query");

    // AGM: output ≤ N^{3/2} via the fractional edge cover (½, ½, ½).
    let bound =
        agm_bound(3, &[vec![0, 1], vec![1, 2], vec![0, 2]], &[n as u64; 3]).expect("cover exists");
    println!("AGM bound: {:.0} (= N^1.5); any pairwise plan may materialise Ω(N²)", bound);

    let engine = Engine::new(store.clone(), OptFlags::all());
    let plan = engine.plan(&q).expect("plannable");
    engine.warm(&q).expect("warm");
    let t0 = Instant::now();
    let wcoj = engine.run_plan(&q, &plan);
    let t_wcoj = t0.elapsed();
    println!("worst-case optimal join: {} triangles in {t_wcoj:?}", wcoj.cardinality());

    let monet = MonetDbStyle::new(&store);
    let t0 = Instant::now();
    let pairwise = monet.execute(&q);
    let t_pair = t0.elapsed();
    println!("pairwise hash joins:     {} triangles in {t_pair:?}", pairwise.len());

    assert_eq!(wcoj.cardinality(), pairwise.len(), "engines must agree");
    println!(
        "speedup: {:.1}x (grows with N: O(N^1.5) vs Ω(N^2))",
        t_pair.as_secs_f64() / t_wcoj.as_secs_f64()
    );
}
