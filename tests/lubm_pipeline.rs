//! End-to-end integration: LUBM generation → store → SPARQL → all five
//! engines agree on the full workload, and cardinalities satisfy the
//! ontology-level invariants the paper's Appendix B counts rely on.

use std::collections::BTreeSet;

use wcoj_rdf::baselines::{LogicBloxStyle, MonetDbStyle, QueryEngine, Rdf3xStyle, TripleBitStyle};
use wcoj_rdf::emptyheaded::{Engine, OptFlags};
use wcoj_rdf::lubm::queries::{lubm_query, QUERY_NUMBERS};
use wcoj_rdf::lubm::{
    class_iri, generate_store, generate_with, pred_iri, rdf_type, Class, GeneratorConfig, Predicate,
};

fn rows(t: &wcoj_rdf::trie::TupleBuffer) -> BTreeSet<Vec<u32>> {
    t.rows().map(|r| r.to_vec()).collect()
}

#[test]
fn full_workload_all_engines_agree() {
    let store = generate_store(&GeneratorConfig::tiny(2));
    let eh = Engine::new(store.clone(), OptFlags::all());
    let triplebit = TripleBitStyle::new(&store);
    let rdf3x = Rdf3xStyle::new(&store);
    let monetdb = MonetDbStyle::new(&store);
    let logicblox = LogicBloxStyle::new(&store);
    for n in QUERY_NUMBERS {
        let q = lubm_query(n, &store).unwrap();
        let reference = rows(eh.run(&q).unwrap().tuples());
        let engines: [&dyn QueryEngine; 4] = [&triplebit, &rdf3x, &monetdb, &logicblox];
        for e in engines {
            assert_eq!(
                rows(&e.execute(&q)),
                reference,
                "LUBM query {n}: {} disagrees with EmptyHeaded",
                e.name()
            );
        }
    }
}

#[test]
fn query_11_is_empty_without_inference() {
    // Paper Appendix B: query 11 returns 0 tuples because research groups
    // are subOrganizationOf departments, not universities, and the
    // inference step is removed.
    let store = generate_store(&GeneratorConfig::tiny(1));
    let engine = Engine::new(store.clone(), OptFlags::all());
    let q = lubm_query(11, &store).unwrap();
    assert_eq!(engine.run(&q).unwrap().cardinality(), 0);
}

#[test]
fn query_4_counts_department0_associate_professors() {
    let store = generate_store(&GeneratorConfig::tiny(1));
    let engine = Engine::new(store.clone(), OptFlags::all());
    let q = lubm_query(4, &store).unwrap();
    let result = engine.run(&q).unwrap();
    // Ground truth from the raw tables: associate professors working for
    // Department0.University0 (each contributes exactly one
    // name/email/telephone row).
    let works = store.table_by_name(&pred_iri(Predicate::WorksFor)).unwrap();
    let types = store.table_by_name(&rdf_type()).unwrap();
    let dept0 = store.resolve_iri("http://www.Department0.University0.edu").unwrap();
    let assoc = store.resolve_iri(&class_iri(Class::AssociateProfessor)).unwrap();
    let expected =
        works.pairs_for_object(dept0).iter().filter(|&&(_, s)| types.contains(s, assoc)).count();
    assert!(expected > 0, "tiny profile still has associate professors");
    assert_eq!(result.cardinality(), expected);
}

#[test]
fn query_14_counts_every_undergraduate() {
    let store = generate_store(&GeneratorConfig::tiny(1));
    let counts = generate_with(&GeneratorConfig::tiny(1), &mut |_| {});
    let engine = Engine::new(store.clone(), OptFlags::all());
    let q = lubm_query(14, &store).unwrap();
    assert_eq!(engine.run(&q).unwrap().cardinality() as u64, counts.undergrad_students);
}

#[test]
fn query_2_triangle_members_are_consistent() {
    // Every (x, y, z) answer of query 2 satisfies all three triangle
    // edges and the three type constraints.
    let store = generate_store(&GeneratorConfig::tiny(2));
    let engine = Engine::new(store.clone(), OptFlags::all());
    let q = lubm_query(2, &store).unwrap();
    let result = engine.run(&q).unwrap();
    assert!(
        result.cardinality() > 0,
        "tiny(2) has triangle matches (degrees within 2 universities)"
    );
    let types = store.table_by_name(&rdf_type()).unwrap();
    let member = store.table_by_name(&pred_iri(Predicate::MemberOf)).unwrap();
    let suborg = store.table_by_name(&pred_iri(Predicate::SubOrganizationOf)).unwrap();
    let degree = store.table_by_name(&pred_iri(Predicate::UndergraduateDegreeFrom)).unwrap();
    let grad = store.resolve_iri(&class_iri(Class::GraduateStudent)).unwrap();
    let univ = store.resolve_iri(&class_iri(Class::University)).unwrap();
    let dept = store.resolve_iri(&class_iri(Class::Department)).unwrap();
    for row in result.iter() {
        let (x, y, z) = (row[0], row[1], row[2]);
        assert!(types.contains(x, grad));
        assert!(types.contains(y, univ));
        assert!(types.contains(z, dept));
        assert!(member.contains(x, z));
        assert!(suborg.contains(z, y));
        assert!(degree.contains(x, y));
    }
}

#[test]
fn scale_grows_monotonically() {
    let one = generate_store(&GeneratorConfig::tiny(1));
    let three = generate_store(&GeneratorConfig::tiny(3));
    assert!(three.num_triples() > one.num_triples() * 2);
    // University entities match the scale knob.
    let types = three.table_by_name(&rdf_type()).unwrap();
    let univ = three.resolve_iri(&class_iri(Class::University)).unwrap();
    assert_eq!(types.pairs_for_object(univ).len(), 3);
}
