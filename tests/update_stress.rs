//! Live-update acceptance tests: the serving tier over a mutable store.
//!
//! The contract under test (ISSUE 3): after an `INSERT`/`DELETE` batch is
//! applied through the TCP protocol, a repeated query returns results
//! **byte-identical** to a cold engine built from the post-update triple
//! set — on the cached, sequential, and parallel paths — while untouched
//! predicates keep their tries (no gratuitous rebuild). A writer/reader
//! stress run exercises the same machinery under contention; the
//! deterministic stale-trie race regression itself lives next to
//! `Catalog` in `emptyheaded`.

use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};

use wcoj_rdf::emptyheaded::{Engine, OptFlags, PlannerConfig, SharedStore, UpdateBatch};
use wcoj_rdf::lubm::queries::lubm_sparql;
use wcoj_rdf::lubm::{generate_store, GeneratorConfig};
use wcoj_rdf::query::QueryBuilder;
use wcoj_rdf::rdf::{parse_ntriples, Term, Triple, TripleStore};
use wcoj_rdf::srv::{respond, serve, Client, QueryService, ServiceConfig};

fn t(s: &str, p: &str, o: &str) -> Triple {
    Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
}

fn base_triples() -> Vec<Triple> {
    vec![
        t("a", "edge", "b"),
        t("b", "edge", "c"),
        t("a", "edge", "c"),
        t("c", "edge", "d"),
        t("a", "kind", "thing"),
        t("b", "kind", "thing"),
    ]
}

fn config(threads: usize) -> ServiceConfig {
    ServiceConfig {
        planner: PlannerConfig::with_flags(OptFlags::all()).with_threads(threads),
        result_cache_bytes: 1 << 20,
        plan_cache_entries: 64,
        server_sessions: 8,
        record_metrics: true,
        slow_query_ms: None,
    }
}

/// The acceptance matrix: updates over the wire, then byte-identical
/// answers on every execution path, at 1/2/4 engine worker threads.
#[test]
fn tcp_updates_answer_like_a_cold_engine_on_every_path() {
    // Triangle query over `edge` — exercises a genuine multiway join.
    let q = "SELECT ?x ?y ?z WHERE { ?x <edge> ?y . ?y <edge> ?z . ?x <edge> ?z }";
    for threads in [1usize, 2, 4] {
        let store = SharedStore::from_triples(base_triples());
        let svc = QueryService::new(store.clone(), config(threads));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let (svc_ref, shutdown_ref) = (&svc, &shutdown);
            scope.spawn(move || serve(svc_ref, listener, shutdown_ref));

            let mut client = Client::connect(addr).unwrap();
            // Warm both caches pre-update.
            let before = client.query(q).unwrap();
            assert!(before.starts_with("OK 1"), "{threads} threads: {before}");
            assert_eq!(client.query(q).unwrap(), before);

            // Close the second triangle (b, c, d) and break the first.
            for line in
                ["INSERT <b> <edge> <d> .", "DELETE <a> <edge> <b> .", "DELETE <nope> <edge> <x> ."]
            {
                assert!(client.send(line).unwrap().starts_with("OK pending"), "{line}");
            }
            let applied = client.send("APPLY").unwrap();
            assert_eq!(
                applied,
                "OK applied inserted=1 deleted=1 predicates=1 compacted=0 epoch=1\n"
            );

            // A cold engine over the post-update triple set: same store
            // contents (the dictionary is part of the store's identity),
            // zero warm state — every trie and cache rebuilt from scratch.
            let cold_store = svc.store().clone();
            let fresh = |runtime_threads: usize| {
                let cold = QueryService::new(cold_store.clone(), config(runtime_threads));
                respond(&cold, &format!("QUERY {q}"))
            };
            let expect_seq = fresh(1);
            assert!(expect_seq.starts_with("OK 1"), "{expect_seq}");
            // Sequential and parallel cold engines agree byte-for-byte.
            assert_eq!(fresh(2), expect_seq);
            assert_eq!(fresh(4), expect_seq);

            // The live service: first post-update answer (fresh execution)
            // and the repeat (cache-served) both match the cold bytes.
            let after = client.query(q).unwrap();
            assert_eq!(after, expect_seq, "{threads} threads: fresh post-update answer");
            let cached = client.query(q).unwrap();
            assert_eq!(cached, expect_seq, "{threads} threads: cached post-update answer");
            let stats = client.send("STATS").unwrap();
            assert!(stats.contains("updates=1 updates_noop=0 inserted=1 deleted=1"), "{stats}");

            client.send("QUIT").ok();
            drop(client);
            shutdown.store(true, Ordering::Release);
        });
    }
}

/// A small batch must not rebuild *any* trie: it stages as an LSM
/// overlay (O(delta) apply, base tries untouched), and only compaction —
/// which retires per predicate, not wholesale — re-freezes the changed
/// one while the untouched predicate keeps its trie throughout.
#[test]
fn untouched_predicates_keep_their_tries() {
    let store = SharedStore::from_triples(base_triples());
    let engine = Engine::new(store.clone(), OptFlags::all());
    let (edge_atom, kind_atom) = {
        let guard = store.read();
        let atom = |rel: &str| {
            let mut qb = QueryBuilder::new();
            let (x, y) = (qb.var("x"), qb.var("y"));
            qb.atom(rel, guard.resolve_iri(rel).unwrap(), x, y);
            qb.select(vec![x]).build().unwrap().atoms()[0].clone()
        };
        (atom("edge"), atom("kind"))
    };
    let edge_before = engine.catalog().trie(&edge_atom, true, true);
    let kind_before = engine.catalog().trie(&kind_atom, true, true);

    let mut batch = UpdateBatch::new();
    batch.insert(t("d", "edge", "e"));
    let summary = engine.update(batch);
    // Staged, not rebuilt: update cost is O(delta), not O(predicate).
    assert_eq!(
        (
            summary.inserted,
            summary.changed_predicates,
            summary.rebuilt_tries,
            summary.compacted_predicates
        ),
        (1, 1, 0, 0)
    );
    let edge_staged = engine.catalog().trie(&edge_atom, true, true);
    assert!(
        std::sync::Arc::ptr_eq(&edge_before, &edge_staged),
        "a staged batch must keep the base trie frozen in place"
    );
    assert!(engine.store().has_deltas());

    // Compaction folds the overlay off the hot path: only the changed
    // predicate's cached tries are re-frozen.
    let c = engine.compact();
    assert_eq!(c.compacted_predicates, 1);
    assert!(c.rebuilt_tries >= 1, "compaction rebuilds the cached orders");
    let edge_after = engine.catalog().trie(&edge_atom, true, true);
    let kind_after = engine.catalog().trie(&kind_atom, true, true);
    assert!(
        !std::sync::Arc::ptr_eq(&edge_before, &edge_after),
        "compacted predicate must get a fresh trie"
    );
    assert_eq!(edge_after.num_tuples(), 5);
    assert!(
        std::sync::Arc::ptr_eq(&kind_before, &kind_after),
        "untouched predicate's trie must be rebuilt exactly never"
    );
}

/// Every overlay lifecycle stage — deltas resident, mid-compaction (one
/// predicate folded by threshold, the other still overlaid), and
/// post-compaction — answers identically to a cold engine built from the
/// final store contents, at 1/2/4 threads, for insert-mostly and
/// tombstone-heavy (delete-mostly) batches alike.
#[test]
fn overlay_lifecycle_matches_cold_engine_at_every_stage() {
    let queries = [
        "SELECT ?x ?y ?z WHERE { ?x <edge> ?y . ?y <edge> ?z . ?x <edge> ?z }",
        "SELECT ?x ?y WHERE { ?x <edge> ?y . ?x <kind> <thing> }",
        "SELECT ?x WHERE { ?x <kind> <thing> }",
    ];
    // One insert-mostly batch, one delete-mostly: both touch `edge` (3
    // staged pairs) and `kind` (1 staged pair). No batch introduces new
    // dictionary terms, so results compare exactly across engines.
    let batches: Vec<UpdateBatch> = vec![
        {
            let mut b = UpdateBatch::new();
            b.insert(t("b", "edge", "d"))
                .insert(t("d", "edge", "a"))
                .insert(t("c", "kind", "thing"))
                .delete(t("a", "edge", "b"));
            b
        },
        {
            let mut b = UpdateBatch::new();
            b.delete(t("b", "edge", "c"))
                .delete(t("c", "edge", "d"))
                .delete(t("b", "kind", "thing"))
                .insert(t("d", "edge", "b"));
            b
        },
    ];
    for threads in [1usize, 2, 4] {
        for batch in &batches {
            let planner = PlannerConfig::with_flags(OptFlags::all()).with_threads(threads);
            let live = Engine::with_config(SharedStore::from_triples(base_triples()), planner);
            // Warm pre-update caches so stale state would be caught.
            for q in &queries {
                live.run_sparql(q).unwrap();
            }
            let s = live.update(batch.clone());
            assert_eq!(s.rebuilt_tries, 0, "default threshold keeps the batch staged");
            assert!(live.store().has_deltas());

            // The reference: a cold engine over the final logical
            // contents (clone carries the deltas; compact folds them).
            let cold = {
                let mut snap = live.store().clone();
                snap.compact_all();
                Engine::with_config(
                    SharedStore::new(snap),
                    PlannerConfig::with_flags(OptFlags::all()),
                )
            };

            // Stage 1: deltas resident.
            for q in &queries {
                assert_eq!(
                    live.run_sparql(q).unwrap(),
                    cold.run_sparql(q).unwrap(),
                    "deltas resident, {threads} threads: {q}"
                );
            }

            // Stage 2: mid-compaction. A threshold of max(2, 1% of base)
            // folds `edge` (3 staged) inline but leaves `kind` (1 staged)
            // overlaid — a genuinely mixed base/overlay catalog.
            let mid = Engine::with_config(
                SharedStore::from_triples(base_triples()),
                planner.with_compaction(2, 1),
            );
            for q in &queries {
                mid.run_sparql(q).unwrap();
            }
            let sm = mid.update(batch.clone());
            assert_eq!(
                (sm.changed_predicates, sm.compacted_predicates),
                (2, 1),
                "threshold must fold edge and keep kind staged"
            );
            assert!(mid.store().has_deltas(), "kind stays overlaid mid-compaction");
            for q in &queries {
                assert_eq!(
                    mid.run_sparql(q).unwrap(),
                    cold.run_sparql(q).unwrap(),
                    "mid-compaction, {threads} threads: {q}"
                );
            }

            // Stage 3: post-compaction.
            let c = live.compact();
            assert_eq!(c.compacted_predicates, 2);
            assert!(!live.store().has_deltas());
            for q in &queries {
                assert_eq!(
                    live.run_sparql(q).unwrap(),
                    cold.run_sparql(q).unwrap(),
                    "post-compaction, {threads} threads: {q}"
                );
            }
        }
    }
}

/// Concurrent readers against a writer toggling the store between two
/// states: every answer must correspond to one of the two consistent
/// states (never a stale trie served past its epoch), and the final
/// answer must equal a cold engine over the final contents.
#[test]
fn readers_race_a_writer_and_only_ever_see_consistent_states() {
    let store = SharedStore::from_triples(base_triples());
    let svc = QueryService::new(store.clone(), config(2));
    let q = "SELECT ?x ?y WHERE { ?x <edge> ?y }";

    // The two valid renderings: without and with the toggled triple
    // (independent snapshot stores — not the live handle).
    let state_a = respond(
        &QueryService::new(SharedStore::from_triples(base_triples()), config(1)),
        &format!("QUERY {q}"),
    );
    let with_extra = {
        let extra = SharedStore::from_triples(
            base_triples().into_iter().chain([t("z", "edge", "a")]).collect::<Vec<_>>(),
        );
        respond(&QueryService::new(extra, config(1)), &format!("QUERY {q}"))
    };
    assert_ne!(state_a, with_extra);

    let rounds = 30usize;
    std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            for i in 0..rounds {
                let mut batch = UpdateBatch::new();
                if i % 2 == 0 {
                    batch.insert(t("z", "edge", "a"));
                } else {
                    batch.delete(t("z", "edge", "a"));
                }
                svc.update(batch);
            }
        });
        for _ in 0..3 {
            scope.spawn(|| {
                for _ in 0..rounds {
                    let got = respond(&svc, &format!("QUERY {q}"));
                    // `z` decodes identically in both dictionaries (it is
                    // appended after the shared base), so a byte match
                    // against either reference is exact.
                    assert!(
                        got == state_a || got == with_extra,
                        "inconsistent snapshot served:\n{got}"
                    );
                }
            });
        }
        writer.join().unwrap();
    });

    // Convergence: `rounds` is even, so the toggle ends deleted.
    assert_eq!(respond(&svc, &format!("QUERY {q}")), state_a);
    let stats = svc.stats();
    assert_eq!(stats.updates_applied, rounds as u64);
    assert_eq!(stats.triples_inserted, (rounds as u64).div_ceil(2));
    assert_eq!(stats.triples_deleted, rounds as u64 / 2);
}

/// The protocol parses real N-Triples term syntax, including literals and
/// the trailing-comment form the grammar allows.
#[test]
fn update_lines_accept_full_ntriples_term_syntax() {
    let store = SharedStore::from_triples(base_triples());
    let svc = QueryService::new(store.clone(), config(1));
    let mut session = wcoj_rdf::srv::Session::new();
    let stage = |session: &mut wcoj_rdf::srv::Session, line: &str| {
        wcoj_rdf::srv::respond_in_session(&svc, session, line)
    };
    assert!(stage(&mut session, r#"INSERT <a> <label> "a \"quoted\" name" . # note"#)
        .starts_with("OK pending"));
    assert!(stage(&mut session, "APPLY").starts_with("OK applied inserted=1"));
    let answer = svc.query_sparql("SELECT ?n WHERE { <a> <label> ?n }").unwrap();
    assert_eq!(answer.result.cardinality(), 1);

    // And the same line round-trips through the parser used at load time.
    let parsed = parse_ntriples(r#"<a> <label> "a \"quoted\" name" . # note"#).unwrap();
    assert_eq!(parsed.len(), 1);
}

// ---------------------------------------------------------------------
// Durability kill matrix: a child process is SIGKILLed at an armed crash
// point inside the WAL/engine write path; the parent recovers from the
// files left behind and must land byte-identically on the state a
// never-crashed engine reaches with the same logged prefix.
// ---------------------------------------------------------------------

/// The queries byte-identity is asserted on: a full dump of `edge`, a
/// genuine multiway join, and the untouched `kind` predicate.
const MATRIX_QUERIES: &[&str] = &[
    "SELECT ?x ?y WHERE { ?x <edge> ?y }",
    "SELECT ?x ?y ?z WHERE { ?x <edge> ?y . ?y <edge> ?z . ?x <edge> ?z }",
    "SELECT ?x WHERE { ?x <kind> <thing> }",
];

/// The deterministic update stream both the child and the reference
/// engine draw from: batch `k` grows the graph with fresh terms and,
/// from `k >= 2` on, deletes a triple an earlier batch inserted — so a
/// replayed prefix is visibly different from any other prefix.
fn matrix_batch(k: usize) -> UpdateBatch {
    let mut b = UpdateBatch::new();
    b.insert(t(&format!("n{k}"), "edge", &format!("n{}", k + 1)));
    b.insert(t("a", "edge", &format!("n{k}")));
    b.insert(t(&format!("n{k}"), "edge", "a"));
    if k >= 2 {
        b.delete(t("a", "edge", &format!("n{}", k - 2)));
    }
    b
}

fn matrix_engine(threads: usize, partitions: usize) -> Engine {
    let store = SharedStore::new(TripleStore::from_triples_partitioned(base_triples(), partitions));
    Engine::with_config(store, PlannerConfig::with_flags(OptFlags::all()).with_threads(threads))
}

/// Decode every answer row to strings: dictionary-independent, so a
/// recovered engine (whose dictionary grew in replay order) compares
/// exactly against a reference that interned the same terms directly.
fn decoded(engine: &Engine, q: &str) -> Vec<Vec<String>> {
    let r = engine.run_sparql(q).unwrap();
    let guard = engine.store();
    (0..r.cardinality())
        .map(|i| r.decode_row(&guard, i).into_iter().map(|t| t.as_str().to_string()).collect())
        .collect()
}

fn assert_answers_match(recovered: &Engine, reference: &Engine, context: &str) {
    for q in MATRIX_QUERIES {
        assert_eq!(decoded(recovered, q), decoded(reference, q), "{context}: {q}");
    }
}

fn matrix_temp(tag: &str, ext: &str) -> PathBuf {
    std::env::temp_dir().join(format!("eh-kill-{tag}-{}.{ext}", std::process::id()))
}

/// Child half of the kill matrix. Only acts when a parent armed it via
/// `EH_KILL_CHILD`; under a normal `cargo test` run it is an instant
/// no-op. The parent also arms `EH_CRASH_POINT`, so one of the
/// `engine.update` / `engine.save_snapshot` calls below SIGKILLs the
/// process mid-write.
#[test]
fn kill_matrix_child() {
    if std::env::var("EH_KILL_CHILD").is_err() {
        return;
    }
    let env_num = |key: &str, default: usize| {
        std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
    };
    let wal = std::env::var("EH_CHILD_WAL").unwrap();
    let batches = env_num("EH_CHILD_BATCHES", 6);
    let save_after = std::env::var("EH_CHILD_SAVE_AFTER").ok().and_then(|v| v.parse().ok());
    let mut engine = matrix_engine(env_num("EH_CHILD_THREADS", 1), env_num("EH_CHILD_PARTS", 1));
    engine.open_wal(&wal).unwrap();
    for k in 0..batches {
        if save_after == Some(k) {
            engine.save_snapshot(std::env::var("EH_CHILD_SNAP").unwrap()).unwrap();
        }
        engine.update(matrix_batch(k));
    }
    // Reaching here means the armed crash point never fired — make the
    // misconfiguration loud (the parent asserts on death by SIGKILL).
    std::process::exit(42);
}

/// Re-run this test binary as `kill_matrix_child` with a crash point
/// armed, and assert the child actually died by SIGKILL there.
#[cfg(unix)]
#[allow(clippy::too_many_arguments)]
fn spawn_killed_child(
    point: &str,
    hit: usize,
    wal: &Path,
    snap: Option<&Path>,
    threads: usize,
    partitions: usize,
    batches: usize,
    save_after: Option<usize>,
) {
    use std::os::unix::process::ExitStatusExt;
    let mut cmd = std::process::Command::new(std::env::current_exe().unwrap());
    cmd.args(["kill_matrix_child", "--exact", "--test-threads=1", "--nocapture"])
        .env("EH_KILL_CHILD", "1")
        .env("EH_CRASH_POINT", format!("{point}:{hit}"))
        .env("EH_CHILD_WAL", wal)
        .env("EH_CHILD_THREADS", threads.to_string())
        .env("EH_CHILD_PARTS", partitions.to_string())
        .env("EH_CHILD_BATCHES", batches.to_string())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null());
    if let Some(snap) = snap {
        cmd.env("EH_CHILD_SNAP", snap);
    }
    if let Some(after) = save_after {
        cmd.env("EH_CHILD_SAVE_AFTER", after.to_string());
    }
    let status = cmd.status().unwrap();
    assert_eq!(
        status.signal(),
        Some(9),
        "crash point {point}:{hit} must SIGKILL the child (got {status:?})"
    );
}

/// One kill-matrix scenario end to end: crash the child at `point` on
/// its `hit`-th firing, recover (snapshot if one was written, else the
/// base store, then the log), and compare against a reference engine
/// that applied exactly the recovered `last_seq` prefix of the stream.
#[cfg(unix)]
fn run_kill_scenario(
    tag: &str,
    point: &str,
    hit: usize,
    threads: usize,
    partitions: usize,
    save_after: Option<usize>,
) {
    let batches = 6usize;
    let wal = matrix_temp(&format!("{tag}-{point}-{hit}-{threads}-{partitions}"), "wal");
    let snap = matrix_temp(&format!("{tag}-{point}-{hit}-{threads}-{partitions}"), "snap");
    std::fs::remove_file(&wal).ok();
    std::fs::remove_file(&snap).ok();

    spawn_killed_child(point, hit, &wal, Some(&snap), threads, partitions, batches, save_after);

    // Recover exactly like the server binary: image first (if the crash
    // happened after the rename), then the log tail.
    let context = format!("{point}:{hit} threads={threads} P={partitions}");
    let mut recovered = if snap.exists() {
        Engine::from_snapshot(
            &snap,
            PlannerConfig::with_flags(OptFlags::all()).with_threads(threads),
        )
        .unwrap()
    } else {
        matrix_engine(threads, partitions)
    };
    let recovery = recovered.open_wal(&wal).unwrap_or_else(|e| panic!("{context}: {e}"));
    let survived = recovery.last_seq as usize;
    assert!(survived <= batches, "{context}: log claims more batches than the child ran");

    // The oracle: a never-crashed engine fed the same logged prefix.
    let reference = matrix_engine(threads, partitions);
    for k in 0..survived {
        reference.update(matrix_batch(k));
    }
    assert_answers_match(&recovered, &reference, &context);
    std::fs::remove_file(&wal).ok();
    std::fs::remove_file(&snap).ok();
}

/// Every append/stage crash point, armed mid-stream, at the base
/// configuration — plus the sharpened per-point expectations (what a
/// torn tail leaves, what a completed append guarantees).
#[cfg(unix)]
#[test]
fn kill_matrix_append_points_recover_byte_identical() {
    for (point, hit) in [
        // Before anything is written: the log ends at the prior batch.
        ("wal-append-pre", 3),
        // Mid-frame: a real torn tail, dropped on recovery.
        ("wal-append-torn", 3),
        // Frame durable, staging never ran: write-ahead means the batch
        // still commits — recovery replays it.
        ("wal-append-post", 3),
        // Staged and logged: the no-crash fast path boundary.
        ("engine-staged", 3),
        // First and last batch of the stream, not just the middle.
        ("wal-append-torn", 1),
        ("engine-staged", 6),
    ] {
        run_kill_scenario("append", point, hit, 1, 1, None);
    }
}

/// Spot combinations across the engine-threads × partitions matrix: the
/// recovery path must not depend on worker count or shard layout.
#[cfg(unix)]
#[test]
fn kill_matrix_thread_and_partition_combinations() {
    for (threads, partitions, point, hit) in [
        (2, 1, "wal-append-torn", 4),
        (4, 1, "engine-staged", 3),
        (1, 4, "wal-append-post", 2),
        (4, 4, "wal-append-torn", 5),
        (2, 4, "wal-append-pre", 2),
    ] {
        run_kill_scenario("combo", point, hit, threads, partitions, None);
    }
}

/// Crash points inside SAVE and the log truncation that follows it. Every
/// landing spot — image not yet written, image renamed but log whole,
/// truncation staged but not renamed, truncation done — must recover to
/// the same state, because replaying already-folded records is
/// idempotent.
#[cfg(unix)]
#[test]
fn kill_matrix_save_and_truncate_points_recover_idempotently() {
    for point in [
        "engine-save-pre",
        "engine-save-renamed",
        "wal-truncate-pre",
        "wal-truncate-staged",
        "wal-truncate-post",
    ] {
        // The child applies 3 batches, SAVEs, then applies 3 more; the
        // armed point fires inside that SAVE.
        run_kill_scenario("save", point, 1, 1, 1, Some(3));
    }
}

/// SAVE racing a live writer (the satellite-2 regression): the WAL
/// sequence is captured under the wal lock in the same bracket as the
/// store clone, so a record is truncated iff it is in the image. If SAVE
/// ever truncated a record the clone missed, recovery here would lose an
/// acknowledged batch and the byte-compare would catch it.
#[test]
fn save_racing_a_writer_loses_no_acknowledged_batch() {
    let wal = matrix_temp("race", "wal");
    let snap = matrix_temp("race", "snap");
    std::fs::remove_file(&wal).ok();
    std::fs::remove_file(&snap).ok();

    let mut engine = matrix_engine(2, 1);
    engine.open_wal(&wal).unwrap();
    let engine = engine;
    std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            for k in 0..40 {
                engine.update(matrix_batch(k));
            }
        });
        // SAVEs interleave with the writer's appends; each captures
        // whatever prefix the clone saw and truncates exactly that.
        for _ in 0..8 {
            engine.save_snapshot(&snap).unwrap();
            std::thread::yield_now();
        }
        writer.join().unwrap();
    });
    assert_eq!(engine.wal_status().unwrap().seq, 40);

    // Recover from the last image + the log tail: every acknowledged
    // batch must be there.
    let mut recovered =
        Engine::from_snapshot(&snap, PlannerConfig::with_flags(OptFlags::all())).unwrap();
    recovered.open_wal(&wal).unwrap();
    assert_answers_match(&recovered, &engine, "save racing writer");
    std::fs::remove_file(&wal).ok();
    std::fs::remove_file(&snap).ok();
}

/// LUBM-scale smoke: updates against a generated dataset keep the full
/// workload answerable and consistent with a cold engine.
#[test]
fn lubm_store_survives_update_cycles() {
    let store = SharedStore::new(generate_store(&GeneratorConfig::tiny(1)));
    let svc = QueryService::new(store.clone(), config(2));
    let q14 = lubm_sparql(14).unwrap().replace(['\n', '\r'], " ");
    let before = respond(&svc, &format!("QUERY {q14}"));
    assert!(before.starts_with("OK "), "{before}");

    // Insert a brand-new graduate student typed like the generator does,
    // via predicates that already exist in the store.
    let rdf_type = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
    let ugrad = "http://www.lehigh.edu/~zhp2/2004/0401/univ-bench.owl#UndergraduateStudent";
    let mut batch = UpdateBatch::new();
    batch.insert(t("http://ex/new-student", rdf_type, ugrad));
    let summary = svc.update(batch);
    assert_eq!((summary.inserted, summary.changed_predicates), (1, 1));

    let after = respond(&svc, &format!("QUERY {q14}"));
    let cold = {
        let snapshot: TripleStore = svc.store().clone();
        respond(&QueryService::new(snapshot, config(1)), &format!("QUERY {q14}"))
    };
    assert_eq!(after, cold, "post-update LUBM answer equals a cold engine's");
    assert_ne!(after, before, "Q14 must see the new undergraduate");
}
