//! Snapshot roundtrip equivalence: an engine (or service) restored from a
//! snapshot file must be observationally identical to a cold-built one —
//! same rows, same bytes on the wire, at 1 and 4 threads, before and
//! after post-load updates — for the full LUBM workload, the adhoc query
//! shapes, and proptest-generated graphs.

use proptest::prelude::*;
use wcoj_rdf::emptyheaded::{
    Engine, OptFlags, PlannerConfig, SharedStore, StoreSnapshot, UpdateBatch,
};
use wcoj_rdf::lubm::queries::{lubm_query, lubm_sparql, QUERY_NUMBERS};
use wcoj_rdf::lubm::{generate_store, GeneratorConfig};
use wcoj_rdf::query::QueryBuilder;
use wcoj_rdf::rdf::{Term, Triple, TripleStore};
use wcoj_rdf::srv::{respond, QueryService, ServiceConfig};

fn temp_snapshot(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("eh-roundtrip-{tag}-{}.snap", std::process::id()))
}

fn config(threads: usize) -> PlannerConfig {
    PlannerConfig::with_flags(OptFlags::all()).with_threads(threads)
}

/// Save `engine`'s store to a fresh snapshot file and load it back.
fn reload(engine: &Engine, tag: &str, threads: usize) -> Engine {
    let path = temp_snapshot(tag);
    engine.save_snapshot(&path).expect("snapshot writes");
    let loaded = Engine::from_snapshot(&path, config(threads)).expect("snapshot loads");
    std::fs::remove_file(&path).ok();
    loaded
}

/// Identical answers for every LUBM query between two engines whose
/// stores share one dictionary (so raw u32 rows are comparable).
fn assert_lubm_equal(reference: &Engine, candidate: &Engine, label: &str) {
    for n in QUERY_NUMBERS {
        let q = {
            let store = reference.store();
            lubm_query(n, &store).expect("workload query")
        };
        let expect = reference.run(&q).expect("reference runs");
        let got = candidate.run(&q).expect("candidate runs");
        assert_eq!(got, expect, "{label}: query {n} diverged");
    }
}

#[test]
fn lubm_engine_roundtrips_at_one_and_four_threads() {
    let store = SharedStore::new(generate_store(&GeneratorConfig::tiny(1)));
    for threads in [1usize, 4] {
        let cold = Engine::with_config(store.clone(), config(threads));
        let loaded = reload(&cold, &format!("lubm-{threads}t"), threads);
        // The loaded engine starts warm: hot orders preloaded, no build
        // needed before the first answer.
        assert!(loaded.catalog().cached_tries() > 0, "{threads} threads: not preloaded");
        assert_lubm_equal(&cold, &loaded, &format!("{threads} threads"));
    }
}

#[test]
fn lubm_service_bytes_are_identical_over_the_wire_format() {
    // Byte-level equivalence through the serving tier: the rendered
    // protocol response of every LUBM query is identical between a cold
    // service and one restarted from the snapshot.
    let store = SharedStore::new(generate_store(&GeneratorConfig::tiny(1)));
    for threads in [1usize, 4] {
        let svc_config = ServiceConfig {
            planner: config(threads),
            result_cache_bytes: 1 << 20,
            plan_cache_entries: ServiceConfig::DEFAULT_PLAN_CACHE_ENTRIES,
            server_sessions: ServiceConfig::DEFAULT_SERVER_SESSIONS,
            record_metrics: true,
            slow_query_ms: None,
        };
        let cold = QueryService::new(store.clone(), svc_config);
        let path = temp_snapshot(&format!("svc-{threads}t"));
        cold.save_snapshot(&path).expect("snapshot writes");
        let warm = QueryService::from_snapshot(&path, svc_config).expect("snapshot loads");
        std::fs::remove_file(&path).ok();
        for n in QUERY_NUMBERS {
            let request = format!("QUERY {}", lubm_sparql(n).expect("workload sparql"));
            assert_eq!(
                respond(&warm, &request),
                respond(&cold, &request),
                "{threads} threads: query {n} bytes diverged"
            );
        }
    }
}

#[test]
fn post_load_updates_behave_like_a_cold_engine() {
    // After a restart from snapshot, the store must stay fully live:
    // applying the same update batch to a cold-built engine and a
    // snapshot-loaded one yields identical answers (the dictionaries are
    // identical, so even raw u32 rows must match).
    let ub = "http://www.lehigh.edu/~zhp2/2004/0401/univ-bench.owl#";
    let batch = || {
        let mut b = UpdateBatch::new();
        // A fresh student taking an existing course (new subject term)…
        b.insert(Triple::new(
            Term::iri("http://www.Department0.University0.edu/GraduateStudentX"),
            Term::iri(format!("{ub}takesCourse")),
            Term::iri("http://www.Department0.University0.edu/GraduateCourse0"),
        ));
        // …and a removal of an existing type assertion.
        b.delete(Triple::new(
            Term::iri("http://www.Department0.University0.edu/UndergraduateStudent0"),
            Term::iri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"),
            Term::iri(format!("{ub}UndergraduateStudent")),
        ));
        b
    };
    for threads in [1usize, 4] {
        // A fresh store per thread count: the updates below mutate it,
        // and both engines of one iteration must start from the same
        // (pristine, dictionary-identical) state.
        let store = SharedStore::new(generate_store(&GeneratorConfig::tiny(1)));
        let cold = Engine::with_config(store.clone(), config(threads));
        let loaded = reload(&cold, &format!("upd-{threads}t"), threads);
        let s1 = cold.update(batch());
        let s2 = loaded.update(batch());
        assert_eq!((s1.inserted, s1.deleted), (s2.inserted, s2.deleted));
        assert!(s1.inserted > 0 && s1.deleted > 0, "batch must change something");
        assert_lubm_equal(&cold, &loaded, &format!("{threads} threads post-update"));
        // And snapshotting the *updated* store roundtrips too.
        let again = reload(&loaded, &format!("upd2-{threads}t"), threads);
        assert_lubm_equal(&cold, &again, &format!("{threads} threads re-snapshot"));
    }
}

/// The adhoc-shapes graph (chains, stars, cycles beyond LUBM's shapes).
fn graph_store() -> TripleStore {
    let mut triples = Vec::new();
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = move |m: u64| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) % m) as u32
    };
    for _ in 0..400 {
        let p = if next(2) == 0 { "edge" } else { "link" };
        triples.push(Triple::new(
            Term::iri(format!("n{}", next(40))),
            Term::iri(p),
            Term::iri(format!("n{}", next(40))),
        ));
    }
    TripleStore::from_triples(triples)
}

#[test]
fn adhoc_shapes_roundtrip() {
    let store = SharedStore::new(graph_store());
    let (edge, link) = {
        let s = store.read();
        (s.resolve_iri("edge").unwrap(), s.resolve_iri("link").unwrap())
    };
    // Four-hop chain, wide star, and a four-cycle (fhw 2).
    let queries = {
        let mut qs = Vec::new();
        let mut qb = QueryBuilder::new();
        let vars: Vec<_> = (0..5).map(|i| qb.var(&format!("v{i}"))).collect();
        for w in vars.windows(2) {
            qb.atom("edge", edge, w[0], w[1]);
        }
        qs.push(qb.select(vec![vars[0], vars[4]]).build().unwrap());

        let mut qb = QueryBuilder::new();
        let hub = qb.var("hub");
        let leaves: Vec<_> = (0..4).map(|i| qb.var(&format!("l{i}"))).collect();
        qb.atom("edge", edge, hub, leaves[0])
            .atom("edge", edge, hub, leaves[1])
            .atom("link", link, hub, leaves[2])
            .atom("link", link, leaves[3], hub);
        qs.push(qb.select(vec![hub]).build().unwrap());

        let mut qb = QueryBuilder::new();
        let v: Vec<_> = (0..4).map(|i| qb.var(&format!("c{i}"))).collect();
        qb.atom("edge", edge, v[0], v[1])
            .atom("link", link, v[1], v[2])
            .atom("edge", edge, v[2], v[3])
            .atom("link", link, v[3], v[0]);
        qs.push(qb.select(v).build().unwrap());
        qs
    };
    for threads in [1usize, 4] {
        let cold = Engine::with_config(store.clone(), config(threads));
        let loaded = reload(&cold, &format!("adhoc-{threads}t"), threads);
        for (i, q) in queries.iter().enumerate() {
            assert_eq!(
                loaded.run(q).expect("loaded runs"),
                cold.run(q).expect("cold runs"),
                "{threads} threads: adhoc shape {i} diverged"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random graphs: the snapshot roundtrip preserves the store exactly
    /// (encoded triples, stats) and a 2-hop join answers identically on
    /// the loaded engine, serially and at 4 threads.
    #[test]
    fn random_graphs_roundtrip(
        edges in proptest::collection::vec((0u32..24, 0u32..2, 0u32..24), 1..120),
    ) {
        let triples: Vec<Triple> = edges
            .iter()
            .map(|&(s, p, o)| {
                Triple::new(
                    Term::iri(format!("n{s}")),
                    Term::iri(if p == 0 { "e" } else { "f" }.to_string()),
                    Term::iri(format!("n{o}")),
                )
            })
            .collect();
        let store = TripleStore::from_triples(triples);
        let tries = StoreSnapshot::hot_tries(&store);
        let mut bytes = Vec::new();
        StoreSnapshot::write(&store, &tries, &mut bytes).expect("writes");
        let snap = StoreSnapshot::read(&bytes[..]).expect("reads");
        prop_assert_eq!(snap.store.stats(), store.stats());
        prop_assert_eq!(
            snap.store.encoded_triples().collect::<Vec<_>>(),
            store.encoded_triples().collect::<Vec<_>>()
        );

        let pred = store.resolve_iri("e").expect("predicate e exists in dict");
        let q = {
            let mut qb = QueryBuilder::new();
            let (x, y, z) = (qb.var("x"), qb.var("y"), qb.var("z"));
            qb.atom("e", pred, x, y).atom("e", pred, y, z);
            qb.select(vec![x, z]).build().expect("query builds")
        };
        let cold = Engine::new(store, OptFlags::all());
        for threads in [1usize, 4] {
            let loaded = Engine::from_loaded_snapshot(
                StoreSnapshot::read(&bytes[..]).expect("re-reads"),
                config(threads),
            );
            prop_assert_eq!(
                loaded.run(&q).expect("loaded runs"),
                cold.run(&q).expect("cold runs"),
                "{} threads", threads
            );
        }
    }
}
