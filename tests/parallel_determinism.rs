//! The parallel runtime's determinism contract, end to end: for every
//! LUBM workload query and the ad-hoc shapes of `adhoc_shapes.rs`,
//! execution at 1/2/4 worker threads returns `QueryResult`s
//! **byte-identical** to sequential execution — same columns, same rows,
//! same row order — under every optimization profile, including
//! morsel size 1 (each outer value its own task) to stress the merge.

use wcoj_rdf::emptyheaded::{Engine, OptFlags, PlannerConfig, RuntimeConfig, SharedStore};
use wcoj_rdf::lubm::queries::{lubm_query, QUERY_NUMBERS};
use wcoj_rdf::lubm::{generate_store, GeneratorConfig};
use wcoj_rdf::query::{ConjunctiveQuery, QueryBuilder};
use wcoj_rdf::rdf::{Term, Triple, TripleStore};

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// Sequential reference vs. every parallel configuration, bit for bit.
/// Engines share one store handle — no per-configuration deep copies.
fn assert_parallel_identical(store: &SharedStore, q: &ConjunctiveQuery, label: &str) {
    for flags in [OptFlags::all(), OptFlags::none()] {
        let reference = Engine::new(store.clone(), flags).run(q).unwrap();
        for threads in THREAD_COUNTS {
            for morsel_size in [1, 256] {
                let runtime = RuntimeConfig::with_threads(threads).with_morsel_size(morsel_size);
                let engine = Engine::with_config(
                    store.clone(),
                    PlannerConfig::with_flags(flags).with_runtime(runtime),
                );
                engine.warm(q).unwrap();
                let parallel = engine.run(q).unwrap();
                assert_eq!(
                    parallel, reference,
                    "{label}: diverged at {threads} threads, morsel {morsel_size}, {flags:?}"
                );
            }
        }
    }
}

#[test]
fn lubm_workload_is_parallel_deterministic() {
    let store = SharedStore::new(generate_store(&GeneratorConfig::tiny(2)));
    for n in QUERY_NUMBERS {
        let q = lubm_query(n, &store.read()).unwrap();
        assert_parallel_identical(&store, &q, &format!("LUBM query {n}"));
    }
}

/// The same seeded random multigraph `adhoc_shapes.rs` uses.
fn graph_store() -> TripleStore {
    let mut triples = Vec::new();
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = move |m: u64| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) % m) as u32
    };
    for _ in 0..400 {
        let p = if next(2) == 0 { "edge" } else { "link" };
        triples.push(Triple::new(
            Term::iri(format!("n{}", next(40))),
            Term::iri(p),
            Term::iri(format!("n{}", next(40))),
        ));
    }
    TripleStore::from_triples(triples)
}

#[test]
fn adhoc_shapes_are_parallel_deterministic() {
    let store = SharedStore::new(graph_store());
    let (e, l) = {
        let guard = store.read();
        (guard.resolve_iri("edge").unwrap(), guard.resolve_iri("link").unwrap())
    };

    // Four-hop chain (multi-node GHD, pipelined when eligible).
    let chain = {
        let mut qb = QueryBuilder::new();
        let vars: Vec<_> = (0..5).map(|i| qb.var(&format!("v{i}"))).collect();
        for w in vars.windows(2) {
            qb.atom("edge", e, w[0], w[1]);
        }
        qb.select(vec![vars[0], vars[4]]).build().unwrap()
    };
    assert_parallel_identical(&store, &chain, "four-hop chain");

    // Wide star over two predicates.
    let star = {
        let mut qb = QueryBuilder::new();
        let hub = qb.var("hub");
        let leaves: Vec<_> = (0..4).map(|i| qb.var(&format!("l{i}"))).collect();
        qb.atom("edge", e, hub, leaves[0])
            .atom("edge", e, hub, leaves[1])
            .atom("link", l, hub, leaves[2])
            .atom("link", l, leaves[3], hub);
        qb.select(vec![hub]).build().unwrap()
    };
    assert_parallel_identical(&store, &star, "wide star");

    // Four-cycle (fhw 2 — wider than anything in LUBM).
    let cycle = {
        let mut qb = QueryBuilder::new();
        let v: Vec<_> = (0..4).map(|i| qb.var(&format!("v{i}"))).collect();
        qb.atom("edge", e, v[0], v[1])
            .atom("edge", e, v[1], v[2])
            .atom("edge", e, v[2], v[3])
            .atom("edge", e, v[3], v[0]);
        qb.select(v).build().unwrap()
    };
    assert_parallel_identical(&store, &cycle, "four-cycle");

    // Triangle anchored at a constant neighbour (selection + cycle).
    let anchored = {
        let anchor = store.read().resolve_iri("n1");
        let mut qb = QueryBuilder::new();
        let (x, y, z) = (qb.var("x"), qb.var("y"), qb.var("z"));
        let a = qb.selection_var(anchor);
        qb.atom("edge", e, x, y).atom("edge", e, y, z).atom("edge", e, x, z).atom("edge", e, x, a);
        qb.select(vec![x, y, z]).build().unwrap()
    };
    assert_parallel_identical(&store, &anchored, "anchored triangle");
}

#[test]
fn logicblox_profile_is_parallel_deterministic_too() {
    // The single-node, selection-blind profile exercises the parallel
    // split on naive attribute orders.
    let store = SharedStore::new(generate_store(&GeneratorConfig::tiny(1)));
    for n in QUERY_NUMBERS {
        let q = lubm_query(n, &store.read()).unwrap();
        let reference =
            Engine::with_config(store.clone(), PlannerConfig::logicblox_style()).run(&q).unwrap();
        for threads in THREAD_COUNTS {
            let config = PlannerConfig::logicblox_style()
                .with_runtime(RuntimeConfig::with_threads(threads).with_morsel_size(16));
            let parallel = Engine::with_config(store.clone(), config).run(&q).unwrap();
            assert_eq!(parallel, reference, "LUBM query {n} at {threads} threads");
        }
    }
}

#[test]
fn parallel_sparql_end_to_end() {
    // SELECT * + trailing dot + parallel runtime in one round trip.
    let store = SharedStore::new(generate_store(&GeneratorConfig::tiny(1)));
    let text = "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n\
                PREFIX ub: <http://www.lehigh.edu/~zhp2/2004/0401/univ-bench.owl#>\n\
                SELECT * WHERE {\n\
                  ?x rdf:type ub:GraduateStudent .\n\
                  ?x ub:memberOf ?dept .\n\
                  ?dept ub:subOrganizationOf ?univ .\n\
                }";
    let sequential = Engine::new(store.clone(), OptFlags::all()).run_sparql(text).unwrap();
    assert!(!sequential.is_empty());
    assert_eq!(sequential.columns(), &["x".to_string(), "dept".into(), "univ".into()]);
    for threads in THREAD_COUNTS {
        let config = PlannerConfig::with_flags(OptFlags::all()).with_threads(threads);
        let parallel = Engine::with_config(store.clone(), config).run_sparql(text).unwrap();
        assert_eq!(parallel, sequential, "{threads} threads");
    }
}
