//! Golden-result tests for the LUBM workload: at the fixed generator
//! profile `GeneratorConfig::tiny(1)` (seed 42), every query's row count
//! and first rows (lexicographically smallest, dictionary-decoded) are
//! pinned as literals. A planner or executor regression now changes a
//! constant in this file instead of passing silently — and because the
//! generator is deterministic, a *generator* change shows up here too.
//!
//! Query 11 legitimately answers 0 rows at this scale: without the
//! benchmark's inference step, research groups are `subOrganizationOf`
//! their department, never directly of `University0`.

use wcoj_rdf::emptyheaded::{Engine, OptFlags, PlannerConfig, SharedStore};
use wcoj_rdf::lubm::queries::{lubm_query, QUERY_NUMBERS};
use wcoj_rdf::lubm::{generate_store, GeneratorConfig};

/// `(query number, row count, first ≤2 sorted rows as "t1 | t2 | ...")`.
const GOLDEN: &[(u32, usize, &[&str])] = &[
    (1, 3, &[
        "http://www.Department0.University0.edu/GraduateStudent1",
        "http://www.Department0.University0.edu/GraduateStudent10",
    ]),
    (2, 82, &[
        "http://www.Department0.University0.edu/GraduateStudent0 | http://www.University0.edu | http://www.Department0.University0.edu",
        "http://www.Department0.University0.edu/GraduateStudent1 | http://www.University0.edu | http://www.Department0.University0.edu",
    ]),
    (3, 3, &[
        "http://www.Department0.University0.edu/AssistantProfessor0/Publication0",
        "http://www.Department0.University0.edu/GraduateStudent12/Publication0",
    ]),
    (4, 3, &[
        "http://www.Department0.University0.edu/AssociateProfessor0 | AssociateProfessor0 | AssociateProfessor0@Department0.University0.edu | xxx-xxx-xxxx",
        "http://www.Department0.University0.edu/AssociateProfessor1 | AssociateProfessor1 | AssociateProfessor1@Department0.University0.edu | xxx-xxx-xxxx",
    ]),
    (5, 40, &[
        "http://www.Department0.University0.edu/UndergraduateStudent0",
        "http://www.Department0.University0.edu/UndergraduateStudent1",
    ]),
    (7, 21, &[
        "http://www.Department0.University0.edu/UndergraduateStudent0 | http://www.Department0.University0.edu/Course5",
        "http://www.Department0.University0.edu/UndergraduateStudent2 | http://www.Department0.University0.edu/Course4",
    ]),
    (8, 184, &[
        "http://www.Department0.University0.edu/UndergraduateStudent0 | http://www.Department0.University0.edu | UndergraduateStudent0@Department0.University0.edu",
        "http://www.Department0.University0.edu/UndergraduateStudent1 | http://www.Department0.University0.edu | UndergraduateStudent1@Department0.University0.edu",
    ]),
    (9, 2, &[
        "http://www.Department1.University0.edu/UndergraduateStudent28 | http://www.Department1.University0.edu/Course9 | http://www.Department1.University0.edu/AssistantProfessor1",
        "http://www.Department1.University0.edu/UndergraduateStudent37 | http://www.Department1.University0.edu/Course9 | http://www.Department1.University0.edu/AssistantProfessor1",
    ]),
    (11, 0, &[]),
    (12, 10, &[
        "http://www.Department0.University0.edu/FullProfessor0 | http://www.Department0.University0.edu",
        "http://www.Department0.University0.edu/FullProfessor1 | http://www.Department0.University0.edu",
    ]),
    (13, 82, &[
        "http://www.Department0.University0.edu/GraduateStudent0",
        "http://www.Department0.University0.edu/GraduateStudent1",
    ]),
    (14, 184, &[
        "http://www.Department0.University0.edu/UndergraduateStudent0",
        "http://www.Department0.University0.edu/UndergraduateStudent1",
    ]),
];

/// Sorted, decoded leading rows of a query's result.
fn head_rows(
    store: &wcoj_rdf::rdf::TripleStore,
    r: &wcoj_rdf::emptyheaded::QueryResult,
    k: usize,
) -> Vec<String> {
    let mut rows: Vec<Vec<u32>> = r.iter().map(|t| t.to_vec()).collect();
    rows.sort();
    rows.iter()
        .take(k)
        .map(|row| {
            row.iter()
                .map(|&id| store.dict().decode(id).as_str().to_string())
                .collect::<Vec<_>>()
                .join(" | ")
        })
        .collect()
}

#[test]
fn golden_covers_every_workload_query() {
    let covered: Vec<u32> = GOLDEN.iter().map(|&(n, _, _)| n).collect();
    assert_eq!(covered, QUERY_NUMBERS.to_vec());
}

#[test]
fn lubm_results_match_goldens() {
    let store = generate_store(&GeneratorConfig::tiny(1));
    let engine = Engine::new(SharedStore::new(store.clone()), OptFlags::all());
    for &(n, count, head) in GOLDEN {
        let q = lubm_query(n, &store).unwrap();
        let r = engine.run(&q).unwrap();
        assert_eq!(r.cardinality(), count, "query {n} cardinality drifted");
        assert_eq!(head_rows(&store, &r, 2), head, "query {n} leading rows drifted");
    }
}

#[test]
fn goldens_hold_on_a_partitioned_store() {
    // The same pinned literals over the store re-split into 4 subject
    // shards, sequentially and in parallel: partitioning moves placement,
    // never answers — shard-local or union execution alike.
    let store = generate_store(&GeneratorConfig::tiny(1));
    let mut split = store.clone();
    split.repartition(4);
    let shared = SharedStore::new(split);
    for threads in [1usize, 4] {
        let engine = Engine::with_config(
            shared.clone(),
            PlannerConfig::with_flags(OptFlags::all())
                .with_runtime(wcoj_rdf::par::RuntimeConfig::with_threads(threads)),
        );
        for &(n, count, head) in GOLDEN {
            let q = lubm_query(n, &store).unwrap();
            let r = engine.run(&q).unwrap();
            assert_eq!(r.cardinality(), count, "query {n} at P=4, {threads} threads");
            assert_eq!(head_rows(&store, &r, 2), head, "query {n} at P=4, {threads} threads");
        }
    }
}

#[test]
fn goldens_hold_under_every_profile() {
    // The same goldens must hold with optimizations off, single-node
    // plans, and the env-configured (possibly parallel) runtime: the
    // answer is a property of the query, not of the plan.
    let store = generate_store(&GeneratorConfig::tiny(1));
    let shared = SharedStore::new(store.clone());
    let configs = [
        PlannerConfig::with_flags(OptFlags::none()),
        PlannerConfig::logicblox_style(),
        PlannerConfig::with_flags(OptFlags::all())
            .with_runtime(wcoj_rdf::par::RuntimeConfig::from_env()),
    ];
    for config in configs {
        let engine = Engine::with_config(shared.clone(), config);
        for &(n, count, head) in GOLDEN {
            let q = lubm_query(n, &store).unwrap();
            let r = engine.run(&q).unwrap();
            assert_eq!(r.cardinality(), count, "query {n} under {config:?}");
            assert_eq!(head_rows(&store, &r, 2), head, "query {n} under {config:?}");
        }
    }
}
