//! Integration tests for the SPARQL frontend and planner invariants on
//! the paper's workload.

use wcoj_rdf::emptyheaded::{Engine, OptFlags, PlannerConfig};
use wcoj_rdf::lubm::queries::{lubm_query, lubm_sparql, QUERY_NUMBERS};
use wcoj_rdf::lubm::{generate_store, GeneratorConfig};
use wcoj_rdf::query::{parse_sparql, Hypergraph};
use wcoj_rdf::rdf::{parse_ntriples, write_ntriples, TripleStore};

#[test]
fn workload_sparql_text_round_trips_through_the_parser() {
    let store = generate_store(&GeneratorConfig::tiny(1));
    for n in QUERY_NUMBERS {
        let text = lubm_sparql(n).unwrap();
        let q = parse_sparql(&text, &store).unwrap_or_else(|e| panic!("query {n}: {e}"));
        assert!(!q.atoms().is_empty());
        assert!(!q.projection().is_empty());
        // Every atom's predicate is one fixed IRI (no variable predicates
        // in the workload).
        for a in q.atoms() {
            assert!(a.relation.starts_with("http://"), "query {n}: {}", a.relation);
        }
    }
}

#[test]
fn paper_example_1_attribute_orders() {
    // §III-B1 Example 1: query 14 uses order [a, x] with the
    // optimization and [x, a] without.
    let store = generate_store(&GeneratorConfig::tiny(1));
    let q = lubm_query(14, &store).unwrap();
    let with = Engine::new(store.clone(), OptFlags::all()).plan(&q).unwrap();
    let without = Engine::new(store.clone(), OptFlags::none()).plan(&q).unwrap();
    let x = q.var_by_name("X").unwrap();
    let a = q.selected_vars()[0];
    assert_eq!(with.global_order, vec![a, x], "selection attribute first");
    assert_eq!(without.global_order, vec![x, a], "naive appearance order");
    // Correspondingly the trie is loaded object-major vs subject-major.
    assert!(!with.nodes[0].atoms[0].subject_first);
    assert!(without.nodes[0].atoms[0].subject_first);
}

#[test]
fn paper_q2_selections_precede_join_attributes() {
    // §III-B1: the query 2 order is [a, b, c | x, y, z] — all three
    // selection attributes before the join attributes.
    let store = generate_store(&GeneratorConfig::tiny(1));
    let q = lubm_query(2, &store).unwrap();
    let plan = Engine::new(store.clone(), OptFlags::all()).plan(&q).unwrap();
    let n_sel = q.selected_vars().len();
    assert_eq!(n_sel, 3);
    let (front, back) = plan.global_order.split_at(n_sel);
    assert!(front.iter().all(|&v| q.is_selected(v)), "selections first: {:?}", plan.global_order);
    assert!(back.iter().all(|&v| !q.is_selected(v)));
}

#[test]
fn cyclic_queries_keep_their_triangle_in_one_bag() {
    let store = generate_store(&GeneratorConfig::tiny(1));
    for qn in [2u32, 9] {
        let q = lubm_query(qn, &store).unwrap();
        let plan = Engine::new(store.clone(), OptFlags::all()).plan(&q).unwrap();
        let h = Hypergraph::from_query(&q);
        // Some bag contains all three triangle variables (the unselected,
        // projected ones).
        let tri: Vec<usize> = (0..q.num_vars()).filter(|&v| !q.is_selected(v)).collect();
        assert_eq!(tri.len(), 3, "query {qn}");
        assert!(
            plan.ghd.bags.iter().any(|bag| tri.iter().all(|v| bag.contains(v))),
            "query {qn}: triangle split across bags: {:?}",
            plan.ghd.bags
        );
        assert!(h.is_cyclic());
    }
}

#[test]
fn logicblox_config_is_single_node() {
    let store = generate_store(&GeneratorConfig::tiny(1));
    let engine = Engine::with_config(store.clone(), PlannerConfig::logicblox_style());
    for n in QUERY_NUMBERS {
        let q = lubm_query(n, &store).unwrap();
        let plan = engine.plan(&q).unwrap();
        assert_eq!(plan.ghd.num_nodes(), 1, "query {n}");
        assert!(!plan.pipelined);
        // Selections trail the join variables in the selection-blind order.
        let first_sel = plan.global_order.iter().position(|&v| q.is_selected(v));
        let last_join = plan.global_order.iter().rposition(|&v| !q.is_selected(v));
        if let (Some(fs), Some(lj)) = (first_sel, last_join) {
            assert!(fs > lj, "query {n}: selections must trail: {:?}", plan.global_order);
        }
    }
}

#[test]
fn ntriples_roundtrip_through_store_and_query() {
    let doc = "<http://e/s1> <http://e/p> <http://e/o1> .\n\
               <http://e/s2> <http://e/p> <http://e/o1> .\n\
               <http://e/s1> <http://e/q> \"v\" .\n";
    let triples = parse_ntriples(doc).unwrap();
    let rendered = write_ntriples(&triples);
    assert_eq!(parse_ntriples(&rendered).unwrap(), triples);
    let store = TripleStore::from_triples(triples);
    let engine = Engine::new(store.clone(), OptFlags::all());
    let r = engine
        .run_sparql("SELECT ?x WHERE { ?x <http://e/p> <http://e/o1> . ?x <http://e/q> \"v\" }")
        .unwrap();
    assert_eq!(r.cardinality(), 1);
    assert_eq!(r.decode_row(&store, 0)[0].as_str(), "http://e/s1");
}

#[test]
fn engine_results_are_deterministic() {
    let store = generate_store(&GeneratorConfig::tiny(2));
    let engine = Engine::new(store.clone(), OptFlags::all());
    for n in QUERY_NUMBERS {
        let q = lubm_query(n, &store).unwrap();
        let a = engine.run(&q).unwrap();
        let b = engine.run(&q).unwrap();
        assert_eq!(a.tuples(), b.tuples(), "query {n}");
    }
}
