//! Assertions for the paper's qualitative claims (§IV-B), with generous
//! margins so they hold under CI noise:
//!
//! 1. On the cyclic queries (2 and 9) the worst-case optimal engines beat
//!    the pairwise MonetDB-style engine.
//! 2. The three classic optimizations give large speedups on the
//!    selective queries Table I highlights.
//! 3. The optimizations never change results, only runtimes.

use std::time::{Duration, Instant};

use wcoj_rdf::baselines::{MonetDbStyle, QueryEngine};
use wcoj_rdf::emptyheaded::{Engine, OptFlags, SharedStore};
use wcoj_rdf::lubm::queries::lubm_query;
use wcoj_rdf::lubm::{generate_store, GeneratorConfig};

fn best_of<T>(runs: usize, mut f: impl FnMut() -> T) -> Duration {
    (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            let _ = f();
            t0.elapsed()
        })
        .min()
        .unwrap()
}

#[test]
fn wcoj_beats_pairwise_on_cyclic_queries() {
    let store = generate_store(&GeneratorConfig::scale(2));
    let shared = SharedStore::new(store.clone());
    let eh = Engine::new(shared, OptFlags::all());
    let monet = MonetDbStyle::new(&store);
    for qn in [2u32, 9] {
        let q = lubm_query(qn, &store).unwrap();
        let plan = eh.plan(&q).unwrap();
        eh.warm(&q).unwrap();
        let t_eh = best_of(3, || eh.run_plan(&q, &plan));
        let t_monet = best_of(3, || monet.execute(&q));
        // The paper reports 8.8x (Q2) and 24x (Q9); require a loose 2x.
        assert!(
            t_monet > t_eh * 2,
            "Q{qn}: pairwise ({t_monet:?}) should trail WCOJ ({t_eh:?}) by >2x"
        );
    }
}

#[test]
fn optimizations_speed_up_selective_queries() {
    let store = SharedStore::new(generate_store(&GeneratorConfig::scale(2)));
    // Table I's headline rows: queries 1 and 14 gain >100x / >200x from
    // +Attribute at paper scale; require a loose 3x for all opts combined.
    // (Was 5x before the adaptive SIMD kernels: those apply under
    // OptFlags::none too, and the unoptimized attribute orders produce
    // exactly the skewed intersections they accelerate most, so the
    // all-vs-none *margin* narrowed — to ~5-7x on quiet hardware — while
    // both absolute times improved.)
    for qn in [1u32, 14] {
        let q = lubm_query(qn, &store.read()).unwrap();
        let all = Engine::new(store.clone(), OptFlags::all());
        let none = Engine::new(store.clone(), OptFlags::none());
        let plan_all = all.plan(&q).unwrap();
        let plan_none = none.plan(&q).unwrap();
        all.warm(&q).unwrap();
        none.warm(&q).unwrap();
        let t_all = best_of(3, || all.run_plan(&q, &plan_all));
        let t_none = best_of(3, || none.run_plan(&q, &plan_none));
        assert!(
            t_none > t_all * 3,
            "Q{qn}: optimizations should speed up by >3x ({t_none:?} vs {t_all:?})"
        );
    }
}

#[test]
fn optimizations_never_change_results() {
    let store = SharedStore::new(generate_store(&GeneratorConfig::tiny(2)));
    for qn in [1u32, 2, 4, 7, 8, 14] {
        let q = lubm_query(qn, &store.read()).unwrap();
        let reference = Engine::new(store.clone(), OptFlags::all()).run(&q).unwrap();
        for k in 0..=4 {
            let r = Engine::new(store.clone(), OptFlags::cumulative(k)).run(&q).unwrap();
            assert_eq!(
                r.tuples(),
                reference.tuples(),
                "Q{qn}: cumulative({k}) changed the result set"
            );
        }
    }
}

#[test]
fn plan_widths_match_the_paper() {
    // fhw 3/2 for the two triangle queries (the paper quotes 1.5 for
    // query 2's GHD), 1 for every acyclic query.
    let store = SharedStore::new(generate_store(&GeneratorConfig::tiny(1)));
    let engine = Engine::new(store.clone(), OptFlags::all());
    for qn in wcoj_rdf::lubm::queries::QUERY_NUMBERS {
        let q = lubm_query(qn, &store.read()).unwrap();
        let plan = engine.plan(&q).unwrap();
        let expected = if wcoj_rdf::lubm::queries::CYCLIC_QUERIES.contains(&qn) {
            wcoj_rdf::lp::Rational::new(3, 2)
        } else {
            wcoj_rdf::lp::Rational::ONE
        };
        assert_eq!(plan.width, expected, "query {qn} width");
    }
}
