//! Truthfulness tests for the observability surface: the numbers the
//! profiler and the metrics endpoint report must agree with independent
//! ground truth, not merely look plausible.
//!
//! * `QueryProfile` kernel tallies are checked **exactly** against the
//!   raw `eh_setops::instrument` dispatch counters (enabled here through
//!   the root crate's dev-dependency feature) over the LUBM golden
//!   workload.
//! * Profiles are schedule-invariant: tallies, candidate counts, and the
//!   stable lines of `EXPLAIN ANALYZE` are byte-identical across 1/2/4
//!   worker threads; volatile lines are `~`-prefixed and stripped.
//! * The serving tier's `STATS`, `METRICS`, and slow-query log report
//!   what actually happened, end to end through the facade crate.
//!
//! The instrument counters are process-global, so every test that
//! executes joins serialises on one mutex — without it, a concurrently
//! running test's dispatches would leak into an exact comparison.

use std::sync::Mutex;

use wcoj_rdf::emptyheaded::{Engine, OptFlags, PlannerConfig, SharedStore};
use wcoj_rdf::lubm::queries::{lubm_query, lubm_sparql, QUERY_NUMBERS};
use wcoj_rdf::lubm::{generate_store, GeneratorConfig};
use wcoj_rdf::obs::parse_exposition;
use wcoj_rdf::par::RuntimeConfig;
use wcoj_rdf::setops::instrument;
use wcoj_rdf::srv::{respond, QueryService, ServiceConfig};

/// Serialises every join-executing test in this binary (see module doc).
static ENGINE_LOCK: Mutex<()> = Mutex::new(());

fn tiny_store() -> SharedStore {
    SharedStore::new(generate_store(&GeneratorConfig::tiny(1)))
}

fn engine_with_threads(store: &SharedStore, threads: usize) -> Engine {
    let config = PlannerConfig::with_flags(OptFlags::all())
        .with_runtime(RuntimeConfig::with_threads(threads).with_morsel_size(1));
    Engine::with_config(store.clone(), config)
}

/// The stable (schedule-invariant) lines of a rendered profile or
/// EXPLAIN ANALYZE report: everything except the `~`-prefixed ones.
fn stable_lines(report: &str) -> Vec<&str> {
    report.lines().filter(|l| !l.trim_start().starts_with('~')).collect()
}

#[test]
fn kernel_tallies_match_instrument_counters_on_the_lubm_workload() {
    let _guard = ENGINE_LOCK.lock().unwrap();
    let store = tiny_store();
    let engine = engine_with_threads(&store, 1);
    let mut profiled_any = false;
    for n in QUERY_NUMBERS {
        let q = lubm_query(n, &store.read()).expect("workload query");
        instrument::reset_kernel_counts();
        let (result, profile) = engine.profile(&q).expect("profiled run");
        let raw = instrument::kernel_counts();
        let tallies = profile.kernel_totals();
        assert_eq!(
            [tallies.word_and, tallies.probe_smallest, tallies.fold_merge],
            raw,
            "Q{n}: QueryProfile kernel tallies diverge from the raw driver counters"
        );
        assert_eq!(
            tallies.dispatches(),
            raw.iter().sum::<u64>(),
            "Q{n}: dispatch total must be the comparable sum"
        );
        // Rows must agree with the profile's final join too.
        let emitted: u64 = profile.joins.last().map(|j| j.rows).unwrap_or(0);
        assert!(
            emitted >= result.cardinality() as u64,
            "Q{n}: final join emitted {emitted} rows but the result has {}",
            result.cardinality()
        );
        profiled_any |= tallies.dispatches() > 0;
    }
    assert!(profiled_any, "the workload must dispatch at least one multiway kernel");
}

#[test]
fn profiles_are_schedule_invariant_across_thread_counts() {
    let _guard = ENGINE_LOCK.lock().unwrap();
    let store = tiny_store();
    // Q2 (the triangle) and Q9 (the other cyclic query) are the paper's
    // headline multiway joins — exactly where kernel choice matters.
    for n in [2u32, 9] {
        let q = lubm_query(n, &store.read()).expect("workload query");
        let reference = {
            let (result, profile) = engine_with_threads(&store, 1).profile(&q).expect("1 thread");
            (result, profile.kernel_totals(), profile.render())
        };
        for threads in [2usize, 4] {
            let engine = engine_with_threads(&store, threads);
            let (result, profile) = engine.profile(&q).expect("profiled run");
            assert_eq!(result, reference.0, "Q{n}: answers must not depend on threads");
            assert_eq!(
                profile.kernel_totals(),
                reference.1,
                "Q{n}: kernel tallies changed between 1 and {threads} threads"
            );
            assert_eq!(
                stable_lines(&profile.render()),
                stable_lines(&reference.2),
                "Q{n}: stable profile lines changed between 1 and {threads} threads"
            );
        }
    }
}

#[test]
fn explain_analyze_is_stable_modulo_volatile_lines_over_the_wire_format() {
    let _guard = ENGINE_LOCK.lock().unwrap();
    let store = tiny_store();
    let text = lubm_sparql(2).expect("workload query");
    let reports: Vec<String> = [1usize, 2, 4]
        .iter()
        .map(|&threads| {
            let service = QueryService::new(
                store.clone(),
                ServiceConfig {
                    planner: PlannerConfig::with_flags(OptFlags::all())
                        .with_runtime(RuntimeConfig::with_threads(threads).with_morsel_size(1)),
                    result_cache_bytes: ServiceConfig::DEFAULT_RESULT_CACHE_BYTES,
                    plan_cache_entries: ServiceConfig::DEFAULT_PLAN_CACHE_ENTRIES,
                    server_sessions: ServiceConfig::DEFAULT_SERVER_SESSIONS,
                    record_metrics: true,
                    slow_query_ms: None,
                },
            );
            service.profile_sparql(&text).expect("PROFILE runs")
        })
        .collect();
    for report in &reports {
        assert!(report.contains("profile:"), "PROFILE must embed the measured profile");
        assert!(report.contains("kernels {"), "PROFILE must report per-depth kernel choices");
        assert!(report.contains("result rows:"), "PROFILE must report the answer cardinality");
    }
    for report in &reports[1..] {
        assert_eq!(
            stable_lines(report),
            stable_lines(&reports[0]),
            "PROFILE output must be byte-stable across thread counts modulo ~ lines"
        );
    }
}

#[test]
fn profile_answers_exactly_match_unprofiled_runs() {
    let _guard = ENGINE_LOCK.lock().unwrap();
    let store = tiny_store();
    let engine = engine_with_threads(&store, 2);
    for n in QUERY_NUMBERS {
        let q = lubm_query(n, &store.read()).expect("workload query");
        let plain = engine.run(&q).expect("plain run");
        let (profiled, _) = engine.profile(&q).expect("profiled run");
        // This equivalence is what makes EH_OBS_FORCE (which routes every
        // run through the profiled path) safe to turn on in CI.
        assert_eq!(plain, profiled, "Q{n}: profiling must not change the answer");
    }
}

#[test]
fn stats_and_metrics_report_served_traffic_through_the_facade() {
    let _guard = ENGINE_LOCK.lock().unwrap();
    let store = tiny_store();
    let service = QueryService::new(
        store,
        ServiceConfig { record_metrics: true, slow_query_ms: None, ..ServiceConfig::default() },
    );
    let text = lubm_sparql(1).expect("workload query");
    let cold = respond(&service, &format!("QUERY {text}"));
    let warm = respond(&service, &format!("QUERY {text}"));
    assert_eq!(cold, warm, "cache must be invisible in the payload");

    let stats = respond(&service, "STATS");
    let p50: u64 = stats
        .split_whitespace()
        .find_map(|kv| kv.strip_prefix("query_p50_us="))
        .and_then(|v| v.parse().ok())
        .expect("STATS carries query_p50_us");
    assert!(p50 >= 1, "recorded latencies quantize to at least 1 us");

    let response = respond(&service, "METRICS");
    let body = response
        .strip_prefix("OK METRICS\n")
        .and_then(|b| b.strip_suffix("END\n"))
        .expect("framed METRICS response");
    let samples = parse_exposition(body).expect("exposition parses");
    let get = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.value)
            .unwrap_or_else(|| panic!("exposition lacks {name}"))
    };
    assert_eq!(get("eh_query_latency_us_count"), 2.0);
    assert_eq!(get("eh_result_cache_hits_total"), 1.0);
    assert_eq!(get("eh_result_cache_misses_total"), 1.0);
    let query_requests = samples
        .iter()
        .find(|s| s.name == "eh_requests_total" && s.label("verb") == Some("query"))
        .map(|s| s.value)
        .expect("per-verb request series");
    assert_eq!(query_requests, 2.0);
}

#[test]
fn slow_query_log_is_reachable_through_the_facade() {
    let _guard = ENGINE_LOCK.lock().unwrap();
    let store = tiny_store();
    let service = QueryService::new(
        store,
        // Threshold 0 ms: everything is "slow", so one query must land in
        // the log without this test depending on actual timings.
        ServiceConfig { record_metrics: true, slow_query_ms: Some(0), ..ServiceConfig::default() },
    );
    let text = lubm_sparql(1).expect("workload query");
    service.query_sparql(&text).expect("query runs");
    let log = service.slow_queries();
    assert_eq!(log.len(), 1);
    assert!(log[0].contains(&text), "slow-log entries carry the query text");
}
