//! The partitioned engine's determinism contract (ISSUE 8): for every
//! partition count P ∈ {1, 2, 4}, at 1/2/4 worker threads, on both the
//! cold (uncached) and warm (cached) paths, and across interleaved live
//! updates, query answers are **byte-identical** to an unpartitioned
//! (P = 1) cold engine over the same logical triples. Partitioning moves
//! placement, never results — whether a query runs shard-local
//! (subject-rooted plans) or through union operands in the multiway
//! driver.

use wcoj_rdf::emptyheaded::{
    Engine, OptFlags, PlannerConfig, QueryResult, RuntimeConfig, SharedStore, UpdateBatch,
};
use wcoj_rdf::lubm::queries::{lubm_query, QUERY_NUMBERS};
use wcoj_rdf::lubm::{generate_store, GeneratorConfig};
use wcoj_rdf::query::ConjunctiveQuery;
use wcoj_rdf::rdf::{Term, Triple, TripleStore};

const PARTITIONS: [usize; 3] = [1, 2, 4];
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

fn t(s: &str, p: &str, o: &str) -> Triple {
    Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
}

/// A shared handle over `store` re-split into `p` subject shards. The
/// dictionary is untouched by repartitioning, so encoded ids — and
/// therefore raw result bytes — stay comparable across every clone.
fn partitioned(store: &TripleStore, p: usize) -> SharedStore {
    let mut s = store.clone();
    s.repartition(p);
    SharedStore::new(s)
}

fn engine(store: SharedStore, threads: usize) -> Engine {
    Engine::with_config(
        store,
        PlannerConfig::with_flags(OptFlags::all())
            .with_runtime(RuntimeConfig::with_threads(threads)),
    )
}

/// Cold run, then cached repeat, both against the reference bytes.
fn assert_cold_and_warm(e: &Engine, q: &ConjunctiveQuery, expected: &QueryResult, label: &str) {
    let cold = e.run(q).unwrap();
    assert_eq!(&cold, expected, "{label}: cold (uncached) run diverged");
    let warm = e.run(q).unwrap();
    assert_eq!(&warm, expected, "{label}: warm (cached) run diverged");
}

#[test]
fn lubm_workload_is_partition_deterministic() {
    let base = generate_store(&GeneratorConfig::tiny(1));
    let reference = Engine::new(SharedStore::new(base.clone()), OptFlags::all());
    for p in PARTITIONS {
        for threads in THREAD_COUNTS {
            let e = engine(partitioned(&base, p), threads);
            for n in QUERY_NUMBERS {
                let q = lubm_query(n, &base).unwrap();
                let expected = reference.run(&q).unwrap();
                assert_cold_and_warm(&e, &q, &expected, &format!("LUBM {n}, P={p} T={threads}"));
            }
        }
    }
}

/// Both partitioned execution strategies against a shape that forces
/// each: a subject-rooted star runs shard-local (every atom's root is
/// the partitioning key), while a triangle's rotated atoms cannot, so
/// the executor unions shard operands through the multiway driver.
#[test]
fn shard_local_and_union_paths_are_partition_deterministic() {
    let mut triples = Vec::new();
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = move |m: u64| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) % m) as u32
    };
    for _ in 0..500 {
        triples.push(t(&format!("n{}", next(60)), "edge", &format!("n{}", next(60))));
    }
    let base = TripleStore::from_triples(triples);
    let reference = Engine::new(SharedStore::new(base.clone()), OptFlags::all());

    let star = "SELECT ?h ?a ?b WHERE { ?h <edge> ?a . ?h <edge> ?b }";
    let triangle = "SELECT ?x ?y ?z WHERE { ?x <edge> ?y . ?y <edge> ?z . ?x <edge> ?z }";
    for shape in [star, triangle] {
        let expected = reference.run_sparql(shape).unwrap();
        assert!(!expected.is_empty(), "degenerate test graph for {shape}");
        for p in PARTITIONS {
            for threads in THREAD_COUNTS {
                let e = engine(partitioned(&base, p), threads);
                let q = {
                    let store = e.store();
                    wcoj_rdf::query::parse_sparql(shape, &store).unwrap()
                };
                assert_cold_and_warm(&e, &q, &expected, &format!("{shape}, P={p} T={threads}"));
            }
        }
    }
}

/// Interleaved updates: the same batch script applied to engines at
/// every partition count must keep answers byte-identical to a *cold*
/// P = 1 engine rebuilt from the post-update triple set after every
/// step — through staged overlays, an explicit mid-script COMPACT, and
/// the cached repeat of each answer.
#[test]
fn interleaved_updates_stay_byte_identical_across_partitions() {
    let base = TripleStore::from_triples(vec![
        t("a", "edge", "b"),
        t("b", "edge", "c"),
        t("a", "edge", "c"),
        t("c", "edge", "d"),
        t("a", "kind", "thing"),
        t("b", "kind", "thing"),
    ]);
    // (inserts, deletes) per step; every engine sees the same script, so
    // dictionaries (and thus raw ids) stay aligned across all of them.
    let steps: Vec<(Vec<Triple>, Vec<Triple>)> = vec![
        (vec![t("b", "edge", "d")], vec![t("a", "edge", "b")]),
        (vec![t("d", "edge", "a"), t("e", "edge", "f"), t("e", "edge", "g")], vec![]),
        (vec![t("f", "edge", "g")], vec![t("c", "edge", "d")]),
    ];
    let triangle = "SELECT ?x ?y ?z WHERE { ?x <edge> ?y . ?y <edge> ?z . ?x <edge> ?z }";
    let star = "SELECT ?h ?a ?b WHERE { ?h <edge> ?a . ?h <edge> ?b }";

    for threads in [1usize, 4] {
        let engines: Vec<Engine> =
            PARTITIONS.iter().map(|&p| engine(partitioned(&base, p), threads)).collect();
        let mut ref_store = base.clone();
        for (step, (inserts, deletes)) in steps.iter().enumerate() {
            // Engine batches delete first, then insert (SPARQL Update
            // convention) — mirror that order in the eager reference.
            ref_store.remove_triples(deletes.clone());
            ref_store.add_triples(inserts.clone());
            let cold = Engine::new(SharedStore::new(ref_store.clone()), OptFlags::all());
            for (e, &p) in engines.iter().zip(PARTITIONS.iter()) {
                let mut batch = UpdateBatch::new();
                batch.inserts = inserts.clone();
                batch.deletes = deletes.clone();
                e.update(batch);
                if step == 1 {
                    // Fold the staged overlays mid-script: post-compaction
                    // answers must be as identical as overlay-served ones.
                    e.compact();
                }
                for shape in [triangle, star] {
                    let expected = cold.run_sparql(shape).unwrap();
                    let q = {
                        let store = e.store();
                        wcoj_rdf::query::parse_sparql(shape, &store).unwrap()
                    };
                    assert_cold_and_warm(
                        e,
                        &q,
                        &expected,
                        &format!("step {step}, P={p} T={threads}, {shape}"),
                    );
                }
            }
        }
    }
}

/// `Engine::repartition` (the server's `--partitions` hook) re-shards a
/// live engine without changing a single answer byte.
#[test]
fn live_repartition_preserves_answers() {
    let base = generate_store(&GeneratorConfig::tiny(1));
    let e = engine(SharedStore::new(base.clone()), 2);
    let q = lubm_query(2, &base).unwrap();
    let before = e.run(&q).unwrap();
    assert_eq!(e.repartition(4), 4);
    assert_eq!(e.store().partitions(), 4);
    assert_eq!(e.run(&q).unwrap(), before, "repartition to 4 changed answers");
    assert_eq!(e.repartition(1), 1);
    assert_eq!(e.run(&q).unwrap(), before, "repartition back to 1 changed answers");
}
