//! Service stress test: 8 client threads firing a mixed LUBM workload
//! over TCP at one `QueryService`, with every wire response asserted
//! byte-identical to single-threaded, uncached execution — and the
//! cache/thread matrix of the acceptance criteria: cached answers equal
//! uncached answers under 1, 2, and 4 worker threads.

use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};

use wcoj_rdf::emptyheaded::{OptFlags, PlannerConfig};
use wcoj_rdf::lubm::queries::{lubm_sparql, QUERY_NUMBERS};
use wcoj_rdf::lubm::{generate_store, GeneratorConfig};
use wcoj_rdf::srv::SharedStore;
use wcoj_rdf::srv::{respond, serve, Client, QueryService, ServiceConfig};

fn service_config(threads: usize) -> ServiceConfig {
    ServiceConfig {
        planner: PlannerConfig::with_flags(OptFlags::all()).with_threads(threads),
        result_cache_bytes: 32 << 20,
        plan_cache_entries: 256,
        server_sessions: 8,
        record_metrics: true,
        slow_query_ms: None,
    }
}

/// The workload as protocol request lines (SPARQL flattened to one line).
fn request_mix() -> Vec<String> {
    QUERY_NUMBERS
        .iter()
        .map(|&n| format!("QUERY {}", lubm_sparql(n).unwrap().replace(['\n', '\r'], " ")))
        .collect()
}

/// Reference responses from a fresh, single-threaded, cache-cold service:
/// the bytes every other configuration must reproduce.
fn reference_responses(store: &SharedStore, requests: &[String]) -> Vec<String> {
    let svc = QueryService::new(store.clone(), service_config(1));
    let reference: Vec<String> = requests.iter().map(|r| respond(&svc, r)).collect();
    // The reference pass itself never hit a cache.
    assert_eq!(svc.stats().result_hits, 0);
    reference
}

#[test]
fn eight_clients_hammering_one_service_get_exact_bytes() {
    let store = SharedStore::new(generate_store(&GeneratorConfig::tiny(1)));
    let requests = request_mix();
    let reference = reference_responses(&store, &requests);

    let svc = QueryService::new(store.clone(), service_config(4));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let shutdown = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let (svc_ref, shutdown_ref) = (&svc, &shutdown);
        scope.spawn(move || serve(svc_ref, listener, shutdown_ref));

        let clients: Vec<_> = (0..8)
            .map(|c| {
                let (requests, reference) = (&requests, &reference);
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    // Each client walks the mix from a different offset,
                    // twice, so requests interleave and repeat.
                    for pass in 0..2 {
                        for i in 0..requests.len() {
                            let idx = (i + c + pass * 5) % requests.len();
                            let wire = client.send(&requests[idx]).expect("query");
                            assert_eq!(
                                wire, reference[idx],
                                "client {c} pass {pass}: response for request {idx} \
                                 diverged from single-threaded execution"
                            );
                        }
                    }
                    client.send("QUIT").ok();
                })
            })
            .collect();
        for c in clients {
            c.join().expect("client thread");
        }
        shutdown.store(true, Ordering::Release);
    });

    let stats = svc.stats();
    let total = 8 * 2 * QUERY_NUMBERS.len() as u64;
    assert_eq!(stats.result_hits + stats.result_misses, total);
    assert!(stats.result_hits > 0, "repeated mix must hit the result cache: {stats:?}");
    // 12 distinct canonical queries exist; concurrent cold misses may
    // race (there is no request coalescing) but the steady state is
    // cache-served, so hits must dominate.
    assert!(stats.result_hits >= total / 2, "hit-rate collapsed on the repeated mix: {stats:?}");
    assert_eq!(stats.result_cache_entries, 12, "one entry per canonical query: {stats:?}");
    // Planning only ever runs on a result miss.
    assert!(stats.plan_hits + stats.plan_misses <= stats.result_misses, "{stats:?}");
}

#[test]
fn cached_answers_identical_across_worker_thread_counts() {
    let store = SharedStore::new(generate_store(&GeneratorConfig::tiny(1)));
    let requests = request_mix();
    let reference = reference_responses(&store, &requests);

    for threads in [1usize, 2, 4] {
        let svc = QueryService::new(store.clone(), service_config(threads));
        // Pass 1 fills the caches (uncached execution), pass 2 is served
        // from them; both must reproduce the single-threaded bytes.
        for pass in 0..2 {
            for (idx, request) in requests.iter().enumerate() {
                let got = respond(&svc, request);
                assert_eq!(
                    got, reference[idx],
                    "request {idx}, pass {pass}, {threads} worker threads"
                );
            }
        }
        let stats = svc.stats();
        assert_eq!(stats.result_misses, 12, "{threads} threads: one miss per distinct query");
        assert_eq!(stats.result_hits, 12, "{threads} threads: second pass fully cached");
    }
}

#[test]
fn invalidation_over_the_wire_is_serialized_with_traffic() {
    let store = SharedStore::new(generate_store(&GeneratorConfig::tiny(1)));
    let requests = request_mix();
    let reference = reference_responses(&store, &requests);

    let svc = QueryService::new(store.clone(), service_config(2));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let shutdown = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let (svc_ref, shutdown_ref) = (&svc, &shutdown);
        scope.spawn(move || serve(svc_ref, listener, shutdown_ref));

        let mut client = Client::connect(addr).expect("connect");
        assert_eq!(client.send(&requests[0]).unwrap(), reference[0]);
        assert_eq!(client.send("INVALIDATE").unwrap(), "OK epoch=1\n");
        // Same answer after invalidation — recomputed, not served stale.
        assert_eq!(client.send(&requests[0]).unwrap(), reference[0]);
        let stats = client.send("STATS").unwrap();
        assert!(stats.contains("epoch=1"), "{stats}");
        client.send("QUIT").ok();
        drop(client);
        shutdown.store(true, Ordering::Release);
    });
    assert_eq!(svc.stats().result_misses, 2, "both passes recomputed across the epoch bump");
}
