//! Cross-engine agreement on query shapes beyond the LUBM workload:
//! longer chains, wide stars, and a four-cycle (fhw 2 — wider than
//! anything in LUBM), over a seeded random graph.

use std::collections::BTreeSet;

use wcoj_rdf::baselines::{LogicBloxStyle, MonetDbStyle, QueryEngine, Rdf3xStyle, TripleBitStyle};
use wcoj_rdf::emptyheaded::{Engine, OptFlags};
use wcoj_rdf::query::{ConjunctiveQuery, Hypergraph, QueryBuilder};
use wcoj_rdf::rdf::{Term, Triple, TripleStore};

fn graph_store() -> TripleStore {
    // Deterministic multigraph over 40 nodes with two predicates.
    let mut triples = Vec::new();
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = move |m: u64| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) % m) as u32
    };
    for _ in 0..400 {
        let p = if next(2) == 0 { "edge" } else { "link" };
        triples.push(Triple::new(
            Term::iri(format!("n{}", next(40))),
            Term::iri(p),
            Term::iri(format!("n{}", next(40))),
        ));
    }
    TripleStore::from_triples(triples)
}

fn check(store: &TripleStore, q: &ConjunctiveQuery, label: &str) -> usize {
    let eh = Engine::new(store.clone(), OptFlags::all());
    let reference: BTreeSet<Vec<u32>> = eh.run(q).unwrap().iter().map(|r| r.to_vec()).collect();
    let engines: Vec<Box<dyn QueryEngine + '_>> = vec![
        Box::new(MonetDbStyle::new(store)),
        Box::new(Rdf3xStyle::new(store)),
        Box::new(TripleBitStyle::new(store)),
        Box::new(LogicBloxStyle::new(store)),
    ];
    for e in &engines {
        let got: BTreeSet<Vec<u32>> = e.execute(q).rows().map(|r| r.to_vec()).collect();
        assert_eq!(got, reference, "{label}: {} disagrees", e.name());
    }
    // And the unoptimized worst-case optimal engine.
    let none = Engine::new(store.clone(), OptFlags::none());
    let got: BTreeSet<Vec<u32>> = none.run(q).unwrap().iter().map(|r| r.to_vec()).collect();
    assert_eq!(got, reference, "{label}: OptFlags::none disagrees");
    reference.len()
}

#[test]
fn four_hop_chain() {
    let store = graph_store();
    let p = store.resolve_iri("edge").unwrap();
    let mut qb = QueryBuilder::new();
    let vars: Vec<_> = (0..5).map(|i| qb.var(&format!("v{i}"))).collect();
    for w in vars.windows(2) {
        qb.atom("edge", p, w[0], w[1]);
    }
    let q = qb.select(vec![vars[0], vars[4]]).build().unwrap();
    let n = check(&store, &q, "four-hop chain");
    assert!(n > 0, "chains should match in a dense-ish graph");
}

#[test]
fn wide_star_with_two_predicates() {
    let store = graph_store();
    let e = store.resolve_iri("edge").unwrap();
    let l = store.resolve_iri("link").unwrap();
    let mut qb = QueryBuilder::new();
    let hub = qb.var("hub");
    let leaves: Vec<_> = (0..4).map(|i| qb.var(&format!("l{i}"))).collect();
    qb.atom("edge", e, hub, leaves[0])
        .atom("edge", e, hub, leaves[1])
        .atom("link", l, hub, leaves[2])
        .atom("link", l, leaves[3], hub);
    let q = qb.select(vec![hub]).build().unwrap();
    check(&store, &q, "wide star");
}

#[test]
fn four_cycle_is_wider_than_lubm() {
    let store = graph_store();
    let p = store.resolve_iri("edge").unwrap();
    let mut qb = QueryBuilder::new();
    let v: Vec<_> = (0..4).map(|i| qb.var(&format!("v{i}"))).collect();
    qb.atom("edge", p, v[0], v[1])
        .atom("edge", p, v[1], v[2])
        .atom("edge", p, v[2], v[3])
        .atom("edge", p, v[3], v[0]);
    let q = qb.select(v.clone()).build().unwrap();
    let h = Hypergraph::from_query(&q);
    assert!(h.is_cyclic());
    let engine = Engine::new(store.clone(), OptFlags::all());
    let plan = engine.plan(&q).unwrap();
    // fhw of the 4-cycle is 2 (two opposite edges cover it).
    assert_eq!(plan.width, wcoj_rdf::lp::Rational::from_int(2));
    check(&store, &q, "four-cycle");
}

#[test]
fn mixed_cycle_with_selection() {
    let store = graph_store();
    let e = store.resolve_iri("edge").unwrap();
    let anchor = store.resolve_iri("n1");
    let mut qb = QueryBuilder::new();
    let (x, y, z) = (qb.var("x"), qb.var("y"), qb.var("z"));
    let a = qb.selection_var(anchor);
    qb.atom("edge", e, x, y).atom("edge", e, y, z).atom("edge", e, x, z).atom("edge", e, x, a); // triangle anchored at a constant neighbour
    let q = qb.select(vec![x, y, z]).build().unwrap();
    check(&store, &q, "anchored triangle");
}
