//! Differential oracle tests: on proptest-generated random multigraphs,
//! the worst-case optimal engine must produce exactly the same distinct
//! row set as the `eh-baselines` pairwise hash-join oracle (the
//! MonetDB-style engine, a completely independent execution path:
//! materialised binary hash joins instead of generic tries), for acyclic
//! *and* cyclic pattern shapes, at two graph-size bands, under every
//! optimization profile — and the canonicalized form of each query must
//! answer identically to the original.

use proptest::prelude::*;
use wcoj_rdf::baselines::{MonetDbStyle, QueryEngine};
use wcoj_rdf::emptyheaded::{Engine, OptFlags, PlannerConfig, RuntimeConfig};
use wcoj_rdf::query::{canonicalize, ConjunctiveQuery, QueryBuilder};
use wcoj_rdf::rdf::{Term, Triple, TripleStore};

/// Build a store from generated `(src, pred, dst)` edges over two
/// predicate tables.
fn store_from_edges(edges: &[(u32, u8, u32)]) -> TripleStore {
    let triples: Vec<Triple> = edges
        .iter()
        .map(|&(s, p, o)| {
            Triple::new(
                Term::iri(format!("n{s}")),
                Term::iri(if p == 0 { "edge" } else { "link" }),
                Term::iri(format!("n{o}")),
            )
        })
        .collect();
    TripleStore::from_triples(triples)
}

/// The pattern shapes under test (≥3 as the harness contract requires;
/// queries 2 of them cyclic). Returns `None` when the store lacks a
/// needed predicate or constant — the case is skipped upstream.
fn shapes(store: &TripleStore) -> Option<Vec<(&'static str, ConjunctiveQuery)>> {
    let e = store.resolve_iri("edge")?;
    let l = store.resolve_iri("link").unwrap_or(u32::MAX);
    let mut out = Vec::new();

    // Triangle (cyclic).
    let mut qb = QueryBuilder::new();
    let (x, y, z) = (qb.var("x"), qb.var("y"), qb.var("z"));
    qb.atom("edge", e, x, y).atom("edge", e, y, z).atom("edge", e, x, z);
    out.push(("triangle", qb.select(vec![x, y, z]).build().ok()?));

    // Two-hop chain over both predicates (acyclic), projection reordered.
    let mut qb = QueryBuilder::new();
    let (x, y, z) = (qb.var("x"), qb.var("y"), qb.var("z"));
    qb.atom("edge", e, x, y).atom("link", l, y, z);
    out.push(("chain", qb.select(vec![z, x]).build().ok()?));

    // Star: one hub, three leaves (acyclic).
    let mut qb = QueryBuilder::new();
    let hub = qb.var("hub");
    let (a, b, c) = (qb.var("a"), qb.var("b"), qb.var("c"));
    qb.atom("edge", e, hub, a).atom("edge", e, hub, b).atom("link", l, c, hub);
    out.push(("star", qb.select(vec![hub, a, b, c]).build().ok()?));

    // Four-cycle (cyclic, fractional hypertree width 2).
    let mut qb = QueryBuilder::new();
    let v: Vec<_> = (0..4).map(|i| qb.var(&format!("v{i}"))).collect();
    qb.atom("edge", e, v[0], v[1])
        .atom("edge", e, v[1], v[2])
        .atom("edge", e, v[2], v[3])
        .atom("edge", e, v[3], v[0]);
    out.push(("four-cycle", qb.select(v).build().ok()?));

    // Anchored path: equality selection on the far endpoint.
    let anchor = store.dict().lookup(&Term::iri("n0"));
    let mut qb = QueryBuilder::new();
    let (x, y) = (qb.var("x"), qb.var("y"));
    let s = qb.selection_var(anchor);
    qb.atom("edge", e, x, y).atom("link", l, y, s);
    out.push(("anchored", qb.select(vec![x, y]).build().ok()?));

    Some(out)
}

/// Sorted distinct rows, the comparison currency for both engines.
fn sorted_rows(t: &wcoj_rdf::trie::TupleBuffer) -> Vec<Vec<u32>> {
    let mut rows: Vec<Vec<u32>> = t.rows().map(|r| r.to_vec()).collect();
    rows.sort();
    rows.dedup();
    rows
}

/// The property: for every shape, WCOJ (all profiles, env-configured
/// runtime) == pairwise oracle, and canonical == original.
fn check_against_oracle(edges: &[(u32, u8, u32)]) -> Result<(), TestCaseError> {
    let store = store_from_edges(edges);
    let Some(shapes) = shapes(&store) else {
        return Err(TestCaseError::Reject("graph lacks a predicate".into()));
    };
    let oracle = MonetDbStyle::new(&store);
    for (label, q) in &shapes {
        let expected = sorted_rows(&oracle.execute(q));
        for flags in [OptFlags::all(), OptFlags::none()] {
            let config = PlannerConfig::with_flags(flags).with_runtime(RuntimeConfig::from_env());
            let engine = Engine::with_config(store.clone(), config);
            let got = sorted_rows(engine.run(q).unwrap().tuples());
            prop_assert_eq!(
                &got,
                &expected,
                "{} with {:?} diverged from the pairwise oracle",
                label,
                flags
            );
            // The canonicalized rebuild answers identically (rows and
            // order semantics; only column names change).
            let canonical = canonicalize(q).to_query().unwrap();
            let canon_rows = sorted_rows(engine.run(&canonical).unwrap().tuples());
            prop_assert_eq!(&canon_rows, &expected, "{} canonical form diverged", label);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Size band 1: sparse graphs on few nodes (empty results common).
    #[test]
    fn wcoj_matches_pairwise_oracle_on_small_graphs(
        edges in proptest::collection::vec((0u32..6, 0u8..2, 0u32..6), 1..30),
    ) {
        check_against_oracle(&edges)?;
    }

    /// Size band 2: denser graphs on more nodes (triangles, hubs, and
    /// longer join chains actually materialise).
    #[test]
    fn wcoj_matches_pairwise_oracle_on_larger_graphs(
        edges in proptest::collection::vec((0u32..20, 0u8..2, 0u32..20), 60..160),
    ) {
        check_against_oracle(&edges)?;
    }
}
