//! Zero-copy snapshot serving equivalence: an engine whose trie arenas
//! are served straight from `mmap`ed snapshot pages must be
//! observationally identical to one that copied the same file into the
//! heap — across partition counts, thread counts, cache states, and
//! post-load updates — and two mapped engines sharing one file must stay
//! independent under mutation.

use wcoj_rdf::emptyheaded::{
    Engine, LoadMode, OptFlags, PlannerConfig, SharedStore, StoreSnapshot, UpdateBatch,
};
use wcoj_rdf::lubm::queries::{lubm_query, lubm_sparql, QUERY_NUMBERS};
use wcoj_rdf::lubm::{generate_store, GeneratorConfig};
use wcoj_rdf::rdf::{Term, Triple};
use wcoj_rdf::srv::{respond, QueryService, ServiceConfig};

fn temp_snapshot(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("eh-mmap-{tag}-{}.snap", std::process::id()))
}

fn config(threads: usize) -> PlannerConfig {
    PlannerConfig::with_flags(OptFlags::all()).with_threads(threads)
}

fn svc_config(threads: usize) -> ServiceConfig {
    ServiceConfig {
        planner: config(threads),
        result_cache_bytes: 1 << 20,
        plan_cache_entries: ServiceConfig::DEFAULT_PLAN_CACHE_ENTRIES,
        server_sessions: ServiceConfig::DEFAULT_SERVER_SESSIONS,
        record_metrics: true,
        slow_query_ms: None,
    }
}

/// Identical answers for every LUBM query between two engines whose
/// stores share one dictionary (so raw u32 rows are comparable).
fn assert_lubm_equal(reference: &Engine, candidate: &Engine, label: &str) {
    for n in QUERY_NUMBERS {
        let q = {
            let store = reference.store();
            lubm_query(n, &store).expect("workload query")
        };
        let expect = reference.run(&q).expect("reference runs");
        let got = candidate.run(&q).expect("candidate runs");
        assert_eq!(got, expect, "{label}: query {n} diverged");
    }
}

/// An update batch touching both an existing predicate and a new term.
fn batch() -> UpdateBatch {
    let ub = "http://www.lehigh.edu/~zhp2/2004/0401/univ-bench.owl#";
    let mut b = UpdateBatch::new();
    b.insert(Triple::new(
        Term::iri("http://www.Department0.University0.edu/GraduateStudentX"),
        Term::iri(format!("{ub}takesCourse")),
        Term::iri("http://www.Department0.University0.edu/GraduateCourse0"),
    ));
    b.delete(Triple::new(
        Term::iri("http://www.Department0.University0.edu/UndergraduateStudent0"),
        Term::iri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"),
        Term::iri(format!("{ub}UndergraduateStudent")),
    ));
    b
}

#[test]
fn mmap_matches_copy_across_partitions_threads_and_updates() {
    for partitions in [1usize, 4] {
        // A fresh store per (P, threads) cell: updates mutate it, and
        // both engines of one cell must start from identical state.
        for threads in [1usize, 4] {
            let tag = format!("matrix-p{partitions}-t{threads}");
            let store = SharedStore::new(generate_store(&GeneratorConfig::tiny(1)));
            let cold = Engine::with_config(store.clone(), config(threads));
            if partitions > 1 {
                cold.repartition(partitions);
            }
            let path = temp_snapshot(&tag);
            cold.save_snapshot(&path).expect("snapshot writes");
            let file_len = std::fs::metadata(&path).expect("snapshot exists").len();

            let copied = Engine::from_snapshot(&path, config(threads)).expect("copy load");
            let mapped = Engine::from_snapshot_mmap(&path, config(threads)).expect("mmap load");
            let load = mapped.load_info().expect("loaded engine records its load");
            assert_eq!(load.mode, LoadMode::Mmap, "{tag}: {:?}", load.fallback);
            assert_eq!(load.mapped_bytes, file_len, "{tag}: whole file mapped");
            let copy_load = copied.load_info().expect("loaded engine records its load");
            assert_eq!(copy_load.mode, LoadMode::Copy, "{tag}");
            assert_eq!(copy_load.mapped_bytes, 0, "{tag}");
            assert_eq!(mapped.store().partitions(), partitions, "{tag}");
            assert!(mapped.catalog().cached_tries() > 0, "{tag}: starts warm");
            assert_lubm_equal(&copied, &mapped, &format!("{tag} fresh"));
            // Second pass over the workload: cached plans and warm tries
            // on both sides must not change a single row.
            assert_lubm_equal(&copied, &mapped, &format!("{tag} warm-cache"));

            // Post-load updates stage deltas on top of mapped arenas;
            // compaction folds them into freshly-owned base tables.
            let s1 = copied.update(batch());
            let s2 = mapped.update(batch());
            assert_eq!((s1.inserted, s1.deleted), (s2.inserted, s2.deleted), "{tag}");
            assert!(s1.inserted > 0 && s1.deleted > 0, "{tag}: batch must change something");
            assert_lubm_equal(&copied, &mapped, &format!("{tag} overlay"));
            copied.compact();
            mapped.compact();
            assert_lubm_equal(&copied, &mapped, &format!("{tag} compacted"));

            // Re-saving over the file the engine still serves from works
            // (atomic rename; the live mapping keeps the old inode), and
            // a fresh mapped load of the new file sees the updated data.
            mapped.save_snapshot(&path).expect("re-save over mapped file");
            assert_lubm_equal(&copied, &mapped, &format!("{tag} post-resave"));
            let reloaded = Engine::from_snapshot_mmap(&path, config(threads)).expect("reload");
            assert_eq!(
                reloaded.load_info().expect("reload records its load").mode,
                LoadMode::Mmap,
                "{tag}"
            );
            assert_lubm_equal(&copied, &reloaded, &format!("{tag} reloaded"));
            std::fs::remove_file(&path).ok();
        }
    }
}

#[test]
fn two_mapped_services_share_one_file_and_stay_independent() {
    let store = SharedStore::new(generate_store(&GeneratorConfig::tiny(1)));
    let seed = QueryService::new(store, svc_config(2));
    let path = temp_snapshot("shared");
    seed.save_snapshot(&path).expect("snapshot writes");

    // Two processes' worth of engines on one file: both map the same
    // bytes (the page cache holds one physical copy).
    let a = QueryService::from_snapshot_mmap(&path, svc_config(2)).expect("service a");
    let b = QueryService::from_snapshot_mmap(&path, svc_config(2)).expect("service b");
    for svc in [&a, &b] {
        let load = svc.engine().load_info().expect("mapped service records its load");
        assert_eq!(load.mode, LoadMode::Mmap, "{:?}", load.fallback);
    }

    // Byte-identical wire responses, asked twice so the second answer
    // exercises each service's result cache.
    let requests: Vec<String> = QUERY_NUMBERS
        .iter()
        .map(|&n| format!("QUERY {}", lubm_sparql(n).expect("workload sparql")))
        .collect();
    let before: Vec<String> = requests.iter().map(|r| respond(&a, r)).collect();
    for (r, expect) in requests.iter().zip(&before) {
        assert_eq!(&respond(&a, r), expect, "a: cached answer diverged");
        assert_eq!(&respond(&b, r), expect, "b: fresh answer diverged");
        assert_eq!(&respond(&b, r), expect, "b: cached answer diverged");
    }

    // Mutating one service never leaks into the other: overlays and
    // compacted tables are process-private; the mapping is read-only.
    let summary = a.engine().update(batch());
    assert!(summary.inserted > 0 && summary.deleted > 0);
    a.invalidate();
    a.compact();
    let changed: Vec<String> = requests.iter().map(|r| respond(&a, r)).collect();
    assert_ne!(changed, before, "the update must be visible on a");
    for (r, expect) in requests.iter().zip(&before) {
        assert_eq!(&respond(&b, r), expect, "b must not see a's update");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn v2_snapshot_mmap_request_falls_back_to_copy_with_reason() {
    let store = generate_store(&GeneratorConfig::tiny(1));
    let tries = StoreSnapshot::hot_tries(&store);
    let mut bytes = Vec::new();
    StoreSnapshot::write_v2(&store, &tries, &mut bytes).expect("v2 writes");
    let path = temp_snapshot("v2-fallback");
    std::fs::write(&path, &bytes).expect("v2 file writes");

    let copied = Engine::from_snapshot(&path, config(2)).expect("copy load");
    let mapped = Engine::from_snapshot_mmap(&path, config(2)).expect("mmap request loads");
    std::fs::remove_file(&path).ok();
    let load = mapped.load_info().expect("loaded engine records its load");
    assert_eq!(load.mode, LoadMode::Copy);
    assert_eq!(load.mapped_bytes, 0);
    let reason = load.fallback.expect("fallback reason recorded");
    assert!(reason.contains("v2"), "{reason}");
    assert_lubm_equal(&copied, &mapped, "v2 fallback");
}
