//! # wcoj-rdf
//!
//! A reproduction of *"Old Techniques for New Join Algorithms: A Case Study
//! in RDF Processing"* (Aberger, Tu, Olukotun, Ré — ICDE 2016) as a Rust
//! workspace. This facade crate re-exports the public API of every
//! sub-crate so downstream users can depend on a single crate.
//!
//! The headline pieces:
//!
//! * [`emptyheaded`] — the worst-case optimal join engine with GHD query
//!   plans and the paper's three classic optimizations (index layouts,
//!   selection pushdown, pipelining).
//! * [`par`] — the deterministic multicore runtime: joins partition their
//!   outermost iterated attribute into morsels across worker threads and
//!   merge results in deterministic order (configure via
//!   [`emptyheaded::PlannerConfig::with_threads`]).
//! * [`lubm`] — a deterministic reimplementation of the LUBM benchmark
//!   data generator and its query workload.
//! * [`baselines`] — simulated comparison engines (MonetDB-, LogicBlox-,
//!   RDF-3X-, and TripleBit-style) used by the benchmark harness.
//! * [`srv`] — the serving tier: a concurrent [`srv::QueryService`] with
//!   canonical-plan and LRU result caches, plus a threaded TCP front end
//!   speaking a line protocol
//!   (`QUERY`/`INSERT`/`DELETE`/`APPLY`/`STATS`/`INVALIDATE`). The store
//!   behind the engine is live: updates flow through
//!   [`emptyheaded::Engine::update`] with per-predicate trie
//!   invalidation.
//!
//! ```
//! use wcoj_rdf::lubm::{GeneratorConfig, generate_store};
//! use wcoj_rdf::lubm::queries::lubm_query;
//! use wcoj_rdf::emptyheaded::{Engine, OptFlags, SharedStore};
//!
//! // Generate a small LUBM dataset (1 university, test-sized profile)
//! // and run query 2 (the triangle query) through the worst-case
//! // optimal engine.
//! let store = SharedStore::new(generate_store(&GeneratorConfig::tiny(1)));
//! let engine = Engine::new(store.clone(), OptFlags::all());
//! let q2 = lubm_query(2, &store.read()).unwrap();
//! let result = engine.run(&q2).unwrap();
//! assert!(result.cardinality() > 0);
//! ```

pub use eh_baselines as baselines;
pub use eh_ghd as ghd;
pub use eh_lp as lp;
pub use eh_lubm as lubm;
pub use eh_obs as obs;
pub use eh_par as par;
pub use eh_query as query;
pub use eh_rdf as rdf;
pub use eh_setops as setops;
pub use eh_srv as srv;
pub use eh_trie as trie;
pub use eh_wal as wal;
pub use emptyheaded;
