//! Minimal, deterministic, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors the exact API subset it uses:
//!
//! * [`rngs::StdRng`] — an xoshiro256++ generator (not the upstream
//!   ChaCha-based one; streams differ from real `rand`, but every use in
//!   this workspace only requires *seed-determinism*, not stream
//!   compatibility).
//! * [`SeedableRng::seed_from_u64`] via SplitMix64 state expansion.
//! * [`Rng::gen_range`] over half-open and inclusive integer ranges and
//!   half-open `f64` ranges.
//! * [`seq::index::sample`] — distinct index sampling (partial
//!   Fisher–Yates).

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range`. Panics on empty ranges, like the
    /// real crate.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Map 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform integer in `[0, span)` by 128-bit multiply-shift (Lemire);
/// the tiny modulo bias is irrelevant for benchmark data generation.
fn bounded(word: u64, span: u64) -> u64 {
    ((u128::from(word) * u128::from(span)) >> 64) as u64
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and good enough for data generation.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, per the xoshiro authors' guidance.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod distributions {
    pub mod uniform {
        use crate::RngCore;

        /// Ranges that can produce a single uniform sample.
        pub trait SampleRange<T> {
            /// Draw one sample; panics on empty ranges.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        macro_rules! impl_int_ranges {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for core::ops::Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "cannot sample empty range");
                        let span = (self.end - self.start) as u64;
                        self.start + crate::bounded(rng.next_u64(), span) as $t
                    }
                }
                impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "cannot sample empty range");
                        let span = (hi - lo) as u64 + 1;
                        if span == 0 {
                            // Full-width range: every word is a valid sample.
                            return rng.next_u64() as $t;
                        }
                        lo + crate::bounded(rng.next_u64(), span) as $t
                    }
                }
            )*};
        }
        impl_int_ranges!(u8, u16, u32, u64, usize);

        impl SampleRange<f64> for core::ops::Range<f64> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (self.end - self.start) * crate::unit_f64(rng.next_u64())
            }
        }
    }
}

pub mod seq {
    pub mod index {
        use crate::RngCore;

        /// The result of [`sample`]: distinct indices in `0..length`.
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Iterate the sampled indices.
            pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
                self.0.iter().copied()
            }

            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// True when no indices were sampled.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// Consume into a plain vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        /// Sample `amount` distinct indices from `0..length` (partial
        /// Fisher–Yates shuffle).
        ///
        /// # Panics
        /// Panics when `amount > length`.
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(amount <= length, "cannot sample {amount} of {length}");
            let mut idx: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = i + crate::bounded(rng.next_u64(), (length - i) as u64) as usize;
                idx.swap(i, j);
            }
            idx.truncate(amount);
            IndexVec(idx)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u32> = (0..32).map(|_| a.gen_range(0u32..1000)).collect();
        let ys: Vec<u32> = (0..32).map(|_| b.gen_range(0u32..1000)).collect();
        let zs: Vec<u32> = (0..32).map(|_| c.gen_range(0u32..1000)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u32..=20);
            assert!((10..=20).contains(&v));
            let w = rng.gen_range(5usize..8);
            assert!((5..8).contains(&w));
            let f = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn sample_is_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = super::seq::index::sample(&mut rng, 50, 10);
        let v = s.into_vec();
        assert_eq!(v.len(), 10);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
        assert!(v.iter().all(|&i| i < 50));
    }

    #[test]
    fn full_sample_returns_everything() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = super::seq::index::sample(&mut rng, 5, 5);
        let mut v = s.into_vec();
        v.sort_unstable();
        assert_eq!(v, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
