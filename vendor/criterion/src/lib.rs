//! Minimal, dependency-free stand-in for the `criterion` bench harness.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the API subset its benches use: `Criterion` with
//! `warm_up_time`/`measurement_time`/`sample_size` builders, benchmark
//! groups, `bench_function`/`bench_with_input`, `BenchmarkId`, and the
//! `criterion_group!`/`criterion_main!` macros. Statistics are simplified:
//! each benchmark warms up once, auto-scales its iteration count to the
//! measurement window, and reports mean wall-clock time per iteration.

use std::time::{Duration, Instant};

/// Top-level harness state.
#[derive(Debug, Clone)]
pub struct Criterion {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Set the warm-up window.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Set the measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Set the nominal sample count (scales the iteration budget).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl ToString, mut f: F) {
        let label = id.to_string();
        run_one(self, &label, &mut f);
    }
}

/// A benchmark identifier `function/parameter`, as printed in reports.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter rendering.
    pub fn new(function: impl ToString, parameter: impl ToString) -> BenchmarkId {
        BenchmarkId { label: format!("{}/{}", function.to_string(), parameter.to_string()) }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Override the nominal sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    /// Run a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl ToString,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.to_string());
        run_one(self.criterion, &label, &mut f);
        self
    }

    /// Run a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion, &label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Finish the group (report separator).
    pub fn finish(self) {
        println!();
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs the payload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` for the scheduled number of iterations, timing the batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(c: &Criterion, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm-up and per-iteration estimate.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    let warm_up_start = Instant::now();
    let mut per_iter = Duration::from_secs(1);
    while warm_up_start.elapsed() < c.warm_up_time {
        f(&mut b);
        per_iter = per_iter.min(b.elapsed.max(Duration::from_nanos(1)));
    }
    // Scale iterations to roughly fill the measurement window, bounded so
    // a pathologically fast payload still terminates.
    let budget = c.measurement_time.as_nanos() / per_iter.as_nanos().max(1);
    let iters = budget.clamp(1, (c.sample_size as u128).saturating_mul(100_000)) as u64;
    b.iters = iters;
    f(&mut b);
    let mean = b.elapsed / iters.max(1) as u32;
    println!("{label}: {mean:>12?}/iter ({iters} iterations)");
}

/// Re-export for benches written against older criterion versions; prefer
/// `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Define a group-runner function from a config and target benchmarks.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        );
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $( $group(); )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .sample_size(3);
        let mut runs = 0u64;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::new("param", 7), &7u32, |b, &x| {
            b.iter(|| x + 1);
        });
        g.finish();
    }

    #[test]
    fn id_renders_function_and_parameter() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
    }
}
