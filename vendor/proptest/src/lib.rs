//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a small random-testing harness covering exactly the surface its
//! property tests use: the [`proptest!`] macro (with optional
//! `#![proptest_config(..)]`), `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!`, range / tuple / `Just` / `collection::vec` strategies,
//! `any::<bool>()`, and the `prop_map`/`prop_flat_map` combinators.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking** — a failing case reports its rendered assertion
//!   message only. Seeds are derived from the test name, so failures
//!   reproduce deterministically across runs.
//! * Default case count is 64 (`ProptestConfig::with_cases` overrides).

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is re-drawn.
    Reject(String),
    /// An assertion failed; the test fails.
    Fail(String),
}

/// Result type the [`proptest!`] macro's closures produce.
pub type TestCaseResult = Result<(), TestCaseError>;

pub mod test_runner {
    /// Runner configuration (only the case count is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run per test.
        pub cases: usize,
    }

    impl ProptestConfig {
        /// A config running `cases` accepted cases.
        pub fn with_cases(cases: usize) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// The harness RNG: xoshiro256++ seeded from the test name, so every
    /// test draws a deterministic but test-specific stream.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// A generator seeded from `name` (FNV-1a hash + SplitMix64
        /// expansion).
        pub fn deterministic(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            let mut state = h;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng { s: [next(), next(), next(), next()] }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform value in `[0, span)` (`span > 0`).
        pub fn below(&mut self, span: u64) -> u64 {
            ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A value generator. Unlike the real crate there is no value tree:
    /// `generate` draws a single concrete value.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from a strategy derived from
        /// it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A strategy that always yields a clone of its value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.below((self.end - self.start) as u64) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + rng.below((hi - lo) as u64 + 1) as $t
                }
            }
        )*};
    }
    impl_int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    macro_rules! impl_tuple_strategies {
        ($(($($name:ident),+))+) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategies! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// Draw an arbitrary value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    /// The strategy behind [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// A strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive size band for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// The strategy behind [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let n = self.size.lo + rng.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// A strategy for vectors whose elements come from `elem` and whose
    /// length falls in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{TestCaseError, TestCaseResult};
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "{}: {:?} != {:?}", format!($($fmt)*), l, r);
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Reject the current case (re-draw) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Define property tests. Supports the subset of the real macro's grammar
/// this workspace uses: an optional leading
/// `#![proptest_config(<expr>)]`, then `#[test] fn name(pat in strategy,
/// ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg($cfg:expr) $($(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                let mut accepted = 0usize;
                let mut attempts = 0usize;
                while accepted < cfg.cases {
                    attempts += 1;
                    if attempts > cfg.cases.saturating_mul(50) + 100 {
                        assert!(
                            accepted > 0,
                            "proptest {}: every generated case was rejected",
                            stringify!($name)
                        );
                        break; // excessive prop_assume! rejection rate
                    }
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    let outcome: $crate::TestCaseResult =
                        (|| -> $crate::TestCaseResult { $body ::core::result::Result::Ok(()) })();
                    match outcome {
                        ::core::result::Result::Ok(()) => accepted += 1,
                        ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed (case {}): {}",
                                stringify!($name),
                                accepted,
                                msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pairs() -> impl Strategy<Value = Vec<(u8, bool)>> {
        crate::collection::vec((0u8..10, any::<bool>()), 0..5)
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0usize..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn tuples_and_collections(v in pairs()) {
            prop_assert!(v.len() < 5);
            for (a, _) in &v {
                prop_assert!(*a < 10, "element {} out of band", a);
            }
        }

        #[test]
        fn map_and_flat_map_compose(v in (1usize..4).prop_flat_map(|n| {
            (Just(n), crate::collection::vec(0u8..8, n..=n))
        }).prop_map(|(n, xs)| (n, xs))) {
            let (n, xs) = v;
            prop_assert_eq!(xs.len(), n);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u8..8) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0, "x = {}", x);
        }
    }

    #[test]
    fn deterministic_streams_per_name() {
        let mut a = crate::test_runner::TestRng::deterministic("t");
        let mut b = crate::test_runner::TestRng::deterministic("t");
        assert_eq!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
